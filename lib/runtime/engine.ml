(** Batched execution of a compiled plan. See the interface for the
    dispatch strategy; the parity contract with
    {!Nfactor.Model_interp.step} is: same entry fires, same outputs,
    same state effect, and the same exceptions in the same order. *)

open Symexec

type stats = {
  mutable packets : int;
  entry_hits : int array;
  mutable fsm_hits : int;
  mutable index_hits : int;
  mutable tree_hits : int;
  mutable scan_hits : int;
  mutable leaf_tests : int;
  mutable scan_tests : int;
  mutable miss_no_config : int;
  mutable miss_no_match : int;
}

type t = {
  mutable plan : Compile.t;
  state : Flowstate.t;
  stats : stats;
  mutable cache : int array;
  mutable gen : int;
  mutable pmask : int;
  mutable uscratch : Value.t array;
}

(* [pmask] bits: which dispatch levels the current packet's walk
   crossed, for hit attribution without per-packet allocation. *)
let m_fsm = 1
let m_hash = 2
let m_tree = 4

let mk_stats (plan : Compile.t) =
  {
    packets = 0;
    entry_hits = Array.make (Nfactor.Model.entry_count plan.Compile.model) 0;
    fsm_hits = 0;
    index_hits = 0;
    tree_hits = 0;
    scan_hits = 0;
    leaf_tests = 0;
    scan_tests = 0;
    miss_no_config = 0;
    miss_no_match = 0;
  }

let of_flowstate (plan : Compile.t) state =
  {
    plan;
    state;
    stats = mk_stats plan;
    cache = Array.make (max 1 (Array.length plan.Compile.lit_fns)) 0;
    gen = 0;
    pmask = 0;
    uscratch = Array.make (max 1 plan.Compile.max_uslots) (Value.Bool false);
  }

let create ?capacity (plan : Compile.t) ~store =
  of_flowstate plan (Flowstate.create ?capacity store)

let of_model ?capacity m ~config ~store =
  create ?capacity (Compile.compile m ~config) ~store

(* An RCU-style reconfiguration: the new plan was built off to the
   side; pointing the engine at it between packets only needs the
   per-literal verdict cache re-sized (slot numbering is per-plan) and
   the update scratch grown. Counters survive — entry indices refer to
   the source model, which must keep its shape. *)
let swap_plan t (plan : Compile.t) =
  if
    Nfactor.Model.entry_count plan.Compile.model
    <> Array.length t.stats.entry_hits
  then invalid_arg "Engine.swap_plan: plan compiled from a different model shape";
  t.plan <- plan;
  t.cache <- Array.make (max 1 (Array.length plan.Compile.lit_fns)) 0;
  t.gen <- 0;
  if plan.Compile.max_uslots > Array.length t.uscratch then
    t.uscratch <- Array.make plan.Compile.max_uslots (Value.Bool false)

type outcome = { outputs : Packet.Pkt.t list; fired : int option }

let miss_outcome = { outputs = []; fired = None }

(* Cached literal test: slot [s] holds a generation-stamped verdict
   [(gen lsl 1) lor bool], so each distinct literal evaluates at most
   once per packet regardless of how many entries test it. *)
let test t pkt s =
  let stamp = t.cache.(s) in
  if stamp lsr 1 = t.gen then stamp land 1 = 1
  else begin
    let b = t.plan.Compile.lit_fns.(s) t.state pkt in
    t.cache.(s) <- (t.gen lsl 1) lor Bool.to_int b;
    b
  end

let entry_holds t pkt (ce : Compile.centry) =
  let n = Array.length ce.Compile.slots in
  let rec go i = i >= n || (test t pkt ce.Compile.slots.(i) && go (i + 1)) in
  go 0

(* Updates evaluate entirely against the pre-state before anything
   commits — mirroring [computed_update]'s "all expressions see the
   pre-state" rule (and its exception order: dict base first, then
   each op chronologically). Resolved values land in [t.uscratch]
   (sized by the plan's [max_uslots]) in resolve order; the commit
   pass walks the same updates with the same cursor discipline and
   applies only the flagged ones — the compiler marked the last update
   per variable, which is all the reference's [Smap.add] folding makes
   observable. *)
let resolve_updates t pkt (ce : Compile.centry) =
  let sc = t.uscratch in
  let i = ref 0 in
  List.iter
    (fun ((u : Compile.cupdate), _) ->
      match u with
      | Compile.CSet (_, f) ->
          sc.(!i) <- f t.state pkt;
          incr i
      | Compile.CDict (v, ops) ->
          ignore (Flowstate.handle t.state v);
          List.iter
            (fun (kf, uf) ->
              sc.(!i) <- kf t.state pkt;
              incr i;
              match uf with
              | Some f ->
                  sc.(!i) <- f t.state pkt;
                  incr i
              | None -> ())
            ops)
    ce.Compile.updates

let commit_updates t (ce : Compile.centry) =
  let sc = t.uscratch in
  let i = ref 0 in
  List.iter
    (fun ((u : Compile.cupdate), flagged) ->
      match u with
      | Compile.CSet (v, _) ->
          let x = sc.(!i) in
          incr i;
          if flagged then Flowstate.set_scalar t.state v x
      | Compile.CDict (v, ops) ->
          List.iter
            (fun (_, uf) ->
              let k = sc.(!i) in
              incr i;
              match uf with
              | Some _ ->
                  let value = sc.(!i) in
                  incr i;
                  if flagged then Flowstate.table_set t.state v k value
              | None -> if flagged then Flowstate.table_remove t.state v k)
            ops)
    ce.Compile.updates

let fire t pkt (ce : Compile.centry) =
  let outputs =
    Array.to_list
      (Array.map
         (fun snap -> List.fold_left (fun acc (set, f) -> set acc (f t.state pkt)) pkt snap)
         ce.Compile.emit)
  in
  resolve_updates t pkt ce;
  commit_updates t ce;
  t.stats.entry_hits.(ce.Compile.eidx) <- t.stats.entry_hits.(ce.Compile.eidx) + 1;
  { outputs; fired = Some ce.Compile.eidx }

(* Counted fire: identical state effect and counters, no output packet
   construction. Emit value expressions still evaluate in order (same
   reads, same exceptions); only the field {e setters} are skipped —
   a setter's coercion error would escape [fire] but not here, which
   no corpus model exhibits (documented in the interface). *)
let fire_count t pkt (ce : Compile.centry) =
  Array.iter
    (fun snap -> List.iter (fun (_, f) -> ignore (f t.state pkt)) snap)
    ce.Compile.emit;
  resolve_updates t pkt ce;
  commit_updates t ce;
  t.stats.entry_hits.(ce.Compile.eidx) <- t.stats.entry_hits.(ce.Compile.eidx) + 1

(* Map a discriminator value to its class index. *)
let seg_index cuts n =
  (* 2 * (#cuts < n), plus 1 when n is itself a cut *)
  let lo = ref 0 and hi = ref (Array.length cuts) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cuts.(mid) < n then lo := mid + 1 else hi := mid
  done;
  let k = !lo in
  if k < Array.length cuts && cuts.(k) = n then (2 * k) + 1 else 2 * k

let class_index (vdis : Compile.vdispatch) v =
  match vdis with
  | Compile.VHash { table; other } -> (
      match Hashtbl.find_opt table v with Some i -> i | None -> other)
  | Compile.VRange { cuts; classes; non_int } -> (
      match v with
      | Value.Int n -> classes.(seg_index cuts n)
      | _ -> non_int)

let find_candidate t pkt (ces : Compile.centry array) =
  let dispatched = t.pmask <> 0 in
  let n = Array.length ces in
  let rec go i =
    if i >= n then None
    else begin
      let ce = ces.(i) in
      if ce.Compile.scan || not dispatched then
        t.stats.scan_tests <- t.stats.scan_tests + 1
      else t.stats.leaf_tests <- t.stats.leaf_tests + 1;
      if entry_holds t pkt ce then Some ce else go (i + 1)
    end
  in
  go 0

let rec descend t pkt (node : Compile.dnode) =
  match node with
  | Compile.Leaf ces -> find_candidate t pkt ces
  | Compile.Dstate { base; key; vdis; absent; unres; children; _ } ->
      let idx =
        match key t.state pkt with
        | exception (Value.Type_error _ | Nfactor.Model_interp.Unresolved _) ->
            unres
        | kv -> (
            match Flowstate.state_read t.state base kv with
            | `No_table -> unres
            | `Absent -> absent
            | `Value v -> class_index vdis v)
      in
      t.pmask <- t.pmask lor m_fsm;
      descend t pkt children.(idx)
  | Compile.Dexpr { expr; vdis; unres; children; _ } ->
      let idx =
        match expr t.state pkt with
        | exception (Value.Type_error _ | Nfactor.Model_interp.Unresolved _) ->
            unres
        | v -> class_index vdis v
      in
      t.pmask <-
        t.pmask
        lor (match vdis with Compile.VHash _ -> m_hash | Compile.VRange _ -> m_tree);
      descend t pkt children.(idx)
  | Compile.Dbool { expr; truthy; falsy; nonbool; unres; children; _ } ->
      let idx =
        match expr t.state pkt with
        | exception (Value.Type_error _ | Nfactor.Model_interp.Unresolved _) ->
            unres
        | Value.Bool true -> truthy
        | Value.Bool false -> falsy
        | Value.Int n -> if n <> 0 then truthy else falsy
        | _ -> nonbool
      in
      t.pmask <- t.pmask lor m_tree;
      descend t pkt children.(idx)

(* Attribution: state node on the walk -> FSM hit; else hash node ->
   index hit; else range/truthiness node -> tree hit; nothing (root
   leaf) or a residual entry -> scan. *)
let attribute t (ce : Compile.centry) =
  if ce.Compile.scan then t.stats.scan_hits <- t.stats.scan_hits + 1
  else if t.pmask land m_fsm <> 0 then t.stats.fsm_hits <- t.stats.fsm_hits + 1
  else if t.pmask land m_hash <> 0 then
    t.stats.index_hits <- t.stats.index_hits + 1
  else if t.pmask land m_tree <> 0 then
    t.stats.tree_hits <- t.stats.tree_hits + 1
  else t.stats.scan_hits <- t.stats.scan_hits + 1

let count_miss t =
  let entries = Nfactor.Model.entry_count t.plan.Compile.model in
  if t.plan.Compile.live = 0 && entries > 0 then
    t.stats.miss_no_config <- t.stats.miss_no_config + 1
  else t.stats.miss_no_match <- t.stats.miss_no_match + 1

let begin_walk t =
  Flowstate.bump_clock t.state;
  t.gen <- t.gen + 1;
  t.stats.packets <- t.stats.packets + 1;
  t.pmask <- 0

(* Step from an arbitrary dispatch node of the current plan — the
   chain linker hands fused packets a start node below the root (the
   upstream hop already decided the skipped prefix). Semantics are
   otherwise [step]'s. *)
let step_at t ~root pkt =
  begin_walk t;
  match descend t pkt root with
  | Some ce ->
      attribute t ce;
      fire t pkt ce
  | None ->
      count_miss t;
      miss_outcome

let step t pkt = step_at t ~root:t.plan.Compile.root pkt

let step_count_at t ~root pkt =
  begin_walk t;
  match descend t pkt root with
  | Some ce ->
      attribute t ce;
      fire_count t pkt ce
  | None -> count_miss t

(* Allocation-free step for timed loops: same walk, same counters,
   same state effect; no outcome record, no output packets. *)
let step_count t pkt = step_count_at t ~root:t.plan.Compile.root pkt

(* ------------------------------------------------------------------ *)
(* Deferred execution (the sharded dataplane's phase protocol)         *)
(* ------------------------------------------------------------------ *)

type pending = { pce : Compile.centry; ppmask : int }

(* One parallel-phase step. The walk runs normally; three exits:

   - [`Rewalk]: the walk read through a frozen store (shared mutable
     state), so its verdict may be stale. Every counter the walk
     touched is rolled back and the caller re-runs the packet
     serially — the discarded walk is invisible in the merged stats.
   - [`Defer p]: the walk is provably exact (no frozen reads) but the
     matched entry is serial (its fire touches shared state). The
     match and its counters stand; the fire is carried in [p] for the
     serial phase — the packet is never walked twice.
   - [`Out] / [`Counted]: fully handled here.

   The rolled-back walk still advanced the store clock and stamped
   recency on shard-local reads; both are invisible to unbounded
   stores and documented noise under a capacity bound. *)
let step_or_defer t ~serial ~count pkt =
  let s = t.stats in
  let sv_packets = s.packets
  and sv_fsm = s.fsm_hits
  and sv_index = s.index_hits
  and sv_tree = s.tree_hits
  and sv_scan = s.scan_hits
  and sv_leaf = s.leaf_tests
  and sv_stests = s.scan_tests
  and sv_mnc = s.miss_no_config
  and sv_mnm = s.miss_no_match in
  let fh0 = Flowstate.frozen_hits t.state in
  begin_walk t;
  let matched = descend t pkt t.plan.Compile.root in
  if Flowstate.frozen_hits t.state <> fh0 then begin
    s.packets <- sv_packets;
    s.fsm_hits <- sv_fsm;
    s.index_hits <- sv_index;
    s.tree_hits <- sv_tree;
    s.scan_hits <- sv_scan;
    s.leaf_tests <- sv_leaf;
    s.scan_tests <- sv_stests;
    s.miss_no_config <- sv_mnc;
    s.miss_no_match <- sv_mnm;
    `Rewalk
  end
  else
    match matched with
    | Some ce when serial ce.Compile.eidx -> `Defer { pce = ce; ppmask = t.pmask }
    | Some ce ->
        attribute t ce;
        if count then begin
          fire_count t pkt ce;
          `Counted
        end
        else `Out (fire t pkt ce)
    | None ->
        count_miss t;
        if count then `Counted else `Out miss_outcome

(* Serial-phase completion of a [`Defer]: re-uses the parallel-phase
   match (no second walk, no second packet count); emits and updates
   evaluate fresh against the now-current state. *)
let fire_pending t ~count pkt (p : pending) =
  t.pmask <- p.ppmask;
  attribute t p.pce;
  if count then begin
    fire_count t pkt p.pce;
    miss_outcome
  end
  else fire t pkt p.pce

let run_batch t pkts = Array.map (step t) pkts

(* Packet generation happens outside the timed sections, in chunks so
   memory stays bounded: [engine_ms] charges the stepping and nothing
   else. The explicit fill loop keeps the RNG consumption order
   identical to [Packet.Traffic.random_stream]. The timed loop uses
   the counted step — no outcome or output allocation. *)
let replay ?(profile = Packet.Traffic.default_profile) t ~seed ~n =
  let rng = Packet.Rng.create seed in
  let elapsed = ref 0.0 in
  let remaining = ref n in
  while !remaining > 0 do
    let m = min !remaining 4096 in
    let buf = ref [] in
    for _ = 1 to m do
      buf := Packet.Traffic.random_pkt rng profile :: !buf
    done;
    let pkts = Array.of_list (List.rev !buf) in
    let t0 = Unix.gettimeofday () in
    for i = 0 to m - 1 do
      step_count t pkts.(i)
    done;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    remaining := !remaining - m
  done;
  !elapsed

(* Same timed-loop discipline as {!replay}, over a churn generator
   (constant live-flow pool with unbounded turnover). The generator is
   consumed outside the timed sections, so elapsed time is stepping
   only — comparable 1:1 with {!Shard.replay_churn}. *)
let replay_churn ?(batch = 4096) t ~churn ~n =
  let elapsed = ref 0.0 in
  let remaining = ref n in
  while !remaining > 0 do
    let m = min !remaining batch in
    let pkts = Array.init m (fun _ -> Packet.Traffic.churn_next churn) in
    let t0 = Unix.gettimeofday () in
    for i = 0 to m - 1 do
      step_count t pkts.(i)
    done;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    remaining := !remaining - m
  done;
  !elapsed

let snapshot t = Flowstate.snapshot t.state
let evictions t = Flowstate.evictions t.state

let pp_stats_of ~evictions ppf (s : stats) =
  Fmt.pf ppf
    "packets %d | hits: fsm %d, index %d, tree %d, scan %d (%d leaf tests, %d scan tests) | \
     miss: no-config %d, no-match %d | evictions %d"
    s.packets s.fsm_hits s.index_hits s.tree_hits s.scan_hits s.leaf_tests
    s.scan_tests s.miss_no_config s.miss_no_match evictions

let pp_stats ppf t =
  pp_stats_of ~evictions:(Flowstate.evictions t.state) ppf t.stats

(* Deterministic field order shared by the single-engine view, the
   sharded per-shard views and the merged view: CI greps depend on
   it. *)
let merge_stats (parts : stats array) =
  if Array.length parts = 0 then invalid_arg "Engine.merge_stats: empty";
  let acc =
    {
      packets = 0;
      entry_hits = Array.make (Array.length parts.(0).entry_hits) 0;
      fsm_hits = 0;
      index_hits = 0;
      tree_hits = 0;
      scan_hits = 0;
      leaf_tests = 0;
      scan_tests = 0;
      miss_no_config = 0;
      miss_no_match = 0;
    }
  in
  Array.iter
    (fun s ->
      acc.packets <- acc.packets + s.packets;
      Array.iteri
        (fun i n -> acc.entry_hits.(i) <- acc.entry_hits.(i) + n)
        s.entry_hits;
      acc.fsm_hits <- acc.fsm_hits + s.fsm_hits;
      acc.index_hits <- acc.index_hits + s.index_hits;
      acc.tree_hits <- acc.tree_hits + s.tree_hits;
      acc.scan_hits <- acc.scan_hits + s.scan_hits;
      acc.leaf_tests <- acc.leaf_tests + s.leaf_tests;
      acc.scan_tests <- acc.scan_tests + s.scan_tests;
      acc.miss_no_config <- acc.miss_no_config + s.miss_no_config;
      acc.miss_no_match <- acc.miss_no_match + s.miss_no_match)
    parts;
  acc

let bprint_stats b (s : stats) ~evictions =
  Printf.bprintf b "\"packets\": %d, " s.packets;
  Printf.bprintf b "\"fsm_hits\": %d, " s.fsm_hits;
  Printf.bprintf b "\"index_hits\": %d, " s.index_hits;
  Printf.bprintf b "\"tree_hits\": %d, " s.tree_hits;
  Printf.bprintf b "\"scan_hits\": %d, " s.scan_hits;
  Printf.bprintf b "\"leaf_tests\": %d, " s.leaf_tests;
  Printf.bprintf b "\"scan_tests\": %d, " s.scan_tests;
  Printf.bprintf b "\"miss_no_config\": %d, " s.miss_no_config;
  Printf.bprintf b "\"miss_no_match\": %d, " s.miss_no_match;
  Printf.bprintf b "\"evictions\": %d, " evictions;
  Printf.bprintf b "\"entry_hits\": [%s]"
    (String.concat ", " (Array.to_list (Array.map string_of_int s.entry_hits)))

let stats_json_of ~nf ~(plan : Compile.t) ~evictions (s : stats) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  Printf.bprintf b "\"nf\": %S, " nf;
  bprint_stats b s ~evictions;
  Printf.bprintf b ", \"live_entries\": %d, " plan.Compile.live;
  Printf.bprintf b "\"indexed_entries\": %d, " plan.Compile.indexed;
  Printf.bprintf b "\"scanned_entries\": %d, " plan.Compile.scanned;
  Printf.bprintf b "\"dropped_static\": %d" plan.Compile.dropped_static;
  Buffer.add_string b "}";
  Buffer.contents b

let stats_json t =
  stats_json_of ~nf:t.plan.Compile.model.Nfactor.Model.nf_name ~plan:t.plan
    ~evictions:(Flowstate.evictions t.state) t.stats
