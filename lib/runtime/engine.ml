(** Batched execution of a compiled plan. See the interface for the
    dispatch strategy; the parity contract with
    {!Nfactor.Model_interp.step} is: same entry fires, same outputs,
    same state effect, and the same exceptions in the same order. *)

open Symexec

type stats = {
  mutable packets : int;
  entry_hits : int array;
  mutable index_hits : int;
  mutable scan_hits : int;
  mutable scan_tests : int;
  mutable miss_no_config : int;
  mutable miss_no_match : int;
}

type t = {
  plan : Compile.t;
  state : Flowstate.t;
  stats : stats;
  cache : int array;
  mutable gen : int;
}

let create ?capacity (plan : Compile.t) ~store =
  {
    plan;
    state = Flowstate.create ?capacity store;
    stats =
      {
        packets = 0;
        entry_hits = Array.make (Nfactor.Model.entry_count plan.Compile.model) 0;
        index_hits = 0;
        scan_hits = 0;
        scan_tests = 0;
        miss_no_config = 0;
        miss_no_match = 0;
      };
    cache = Array.make (max 1 (Array.length plan.Compile.lit_fns)) 0;
    gen = 0;
  }

let of_model ?capacity m ~config ~store =
  create ?capacity (Compile.compile m ~config) ~store

type outcome = { outputs : Packet.Pkt.t list; fired : int option }

(* Cached literal test: slot [s] holds a generation-stamped verdict
   [(gen lsl 1) lor bool], so each distinct literal evaluates at most
   once per packet regardless of how many entries test it. *)
let test t pkt s =
  let stamp = t.cache.(s) in
  if stamp lsr 1 = t.gen then stamp land 1 = 1
  else begin
    let b = t.plan.Compile.lit_fns.(s) t.state pkt in
    t.cache.(s) <- (t.gen lsl 1) lor Bool.to_int b;
    b
  end

let entry_holds t pkt (ce : Compile.centry) =
  let n = Array.length ce.Compile.slots in
  let rec go i = i >= n || (test t pkt ce.Compile.slots.(i) && go (i + 1)) in
  go 0

(* A resolved state transition, evaluated entirely against the
   pre-state before anything commits — mirroring [computed_update]'s
   "all expressions see the pre-state" rule (and its exception
   order: dict base first, then each op chronologically). *)
type pending =
  | PSet of string * Value.t
  | PDict of string * (Value.t * Value.t option) list

let resolve_update t pkt (u : Compile.cupdate) =
  match u with
  | Compile.CSet (v, f) -> PSet (v, f t.state pkt)
  | Compile.CDict (v, ops) ->
      ignore (Flowstate.handle t.state v);
      PDict
        ( v,
          List.map
            (fun (kf, uf) -> (kf t.state pkt, Option.map (fun f -> f t.state pkt) uf))
            ops )

let commit t = function
  | PSet (v, value) -> Flowstate.set_scalar t.state v value
  | PDict (v, ops) ->
      List.iter
        (fun (k, op) ->
          match op with
          | Some value -> Flowstate.table_set t.state v k value
          | None -> Flowstate.table_remove t.state v k)
        ops

(* The reference interpreter computes every update from the pre-state
   and folds them with [Smap.add], so when one entry updates a variable
   twice only the last update is observable. Committing in order
   through a mutable store would merge them instead — keep the last
   resolved update per variable. *)
let dedupe_last pending =
  let name = function PSet (v, _) | PDict (v, _) -> v in
  List.filteri
    (fun i p -> not (List.exists (fun p' -> name p' = name p) (List.filteri (fun j _ -> j > i) pending)))
    pending

let fire t pkt (ce : Compile.centry) =
  let outputs =
    Array.to_list
      (Array.map
         (fun snap -> List.fold_left (fun acc (set, f) -> set acc (f t.state pkt)) pkt snap)
         ce.Compile.emit)
  in
  let pending = List.map (resolve_update t pkt) ce.Compile.updates in
  List.iter (commit t) (dedupe_last pending);
  t.stats.entry_hits.(ce.Compile.eidx) <- t.stats.entry_hits.(ce.Compile.eidx) + 1;
  { outputs; fired = Some ce.Compile.eidx }

(* Index keys come from equality literals every candidate entry tests,
   so a key that fails to evaluate means those literals are false:
   the whole segment misses, it does not raise. *)
let probe_keys t pkt (keys : Compile.valfn array) =
  match Array.to_list (Array.map (fun f -> f t.state pkt) keys) with
  | kvs -> Some kvs
  | exception Value.Type_error _ -> None
  | exception Nfactor.Model_interp.Unresolved _ -> None

let find_candidate t pkt (ces : Compile.centry array) =
  let n = Array.length ces in
  let rec go i =
    if i >= n then None
    else begin
      t.stats.scan_tests <- t.stats.scan_tests + 1;
      if entry_holds t pkt ces.(i) then Some ces.(i) else go (i + 1)
    end
  in
  go 0

let step t pkt =
  Flowstate.bump_clock t.state;
  t.gen <- t.gen + 1;
  t.stats.packets <- t.stats.packets + 1;
  let segs = t.plan.Compile.segments in
  let n = Array.length segs in
  let rec walk i =
    if i >= n then None
    else
      match segs.(i) with
      | Compile.Scan ces -> (
          match find_candidate t pkt ces with
          | Some ce ->
              t.stats.scan_hits <- t.stats.scan_hits + 1;
              Some ce
          | None -> walk (i + 1))
      | Compile.Index { keys; table } -> (
          let hit =
            match probe_keys t pkt keys with
            | None -> None
            | Some kvs -> (
                match Hashtbl.find_opt table kvs with
                | None -> None
                | Some ces -> find_candidate t pkt ces)
          in
          match hit with
          | Some ce ->
              t.stats.index_hits <- t.stats.index_hits + 1;
              Some ce
          | None -> walk (i + 1))
  in
  match walk 0 with
  | Some ce -> fire t pkt ce
  | None ->
      let entries = Nfactor.Model.entry_count t.plan.Compile.model in
      if t.plan.Compile.live = 0 && entries > 0 then
        t.stats.miss_no_config <- t.stats.miss_no_config + 1
      else t.stats.miss_no_match <- t.stats.miss_no_match + 1;
      { outputs = []; fired = None }

let run_batch t pkts = Array.map (step t) pkts

let replay ?(profile = Packet.Traffic.default_profile) t ~seed ~n =
  let rng = Packet.Rng.create seed in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (step t (Packet.Traffic.random_pkt rng profile))
  done;
  Unix.gettimeofday () -. t0

let snapshot t = Flowstate.snapshot t.state

let pp_stats ppf t =
  let s = t.stats in
  Fmt.pf ppf
    "packets %d | hits: index %d, scan %d (%d entry tests) | miss: no-config %d, no-match %d | evictions %d"
    s.packets s.index_hits s.scan_hits s.scan_tests s.miss_no_config s.miss_no_match
    (Flowstate.evictions t.state)

let stats_json t =
  let s = t.stats in
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  Printf.bprintf b "\"nf\": %S, " t.plan.Compile.model.Nfactor.Model.nf_name;
  Printf.bprintf b "\"packets\": %d, " s.packets;
  Printf.bprintf b "\"index_hits\": %d, " s.index_hits;
  Printf.bprintf b "\"scan_hits\": %d, " s.scan_hits;
  Printf.bprintf b "\"scan_tests\": %d, " s.scan_tests;
  Printf.bprintf b "\"miss_no_config\": %d, " s.miss_no_config;
  Printf.bprintf b "\"miss_no_match\": %d, " s.miss_no_match;
  Printf.bprintf b "\"evictions\": %d, " (Flowstate.evictions t.state);
  Printf.bprintf b "\"live_entries\": %d, " t.plan.Compile.live;
  Printf.bprintf b "\"indexed_entries\": %d, " t.plan.Compile.indexed;
  Printf.bprintf b "\"dropped_static\": %d, " t.plan.Compile.dropped_static;
  Printf.bprintf b "\"entry_hits\": [%s]"
    (String.concat ", " (Array.to_list (Array.map string_of_int s.entry_hits)));
  Buffer.add_string b "}";
  Buffer.contents b
