(** Batched execution of a compiled plan over a mutable flow-state
    store.

    Per packet the engine walks the plan's decision structure from the
    root: state nodes probe the flow's current state value once and
    branch on it (the per-flow FSM level), expression nodes branch on a
    hash or interval lookup of a packet/store value, truthiness nodes
    on an atom's boolean — until a leaf, whose candidates are tested in
    order on their remaining literals. Every literal verdict is cached
    per packet in a generation-stamped slot array, so a literal shared
    by many entries evaluates at most once. The first entry whose
    remaining slots all hold fires, exactly like
    {!Nfactor.Model_interp.step}.

    Counter taxonomy: a fired packet is attributed to exactly one
    dispatch level — [fsm_hits] when its path crossed a state node,
    else [index_hits] (hash node), else [tree_hits] (interval or
    truthiness node), else [scan_hits] (root-leaf plans and
    residual-match entries, which only the ordered scan resolves).
    Candidate tests under a dispatch node count as [leaf_tests];
    ordered-scan work (undispatched walks and residual candidates)
    counts as [scan_tests]. *)

type stats = {
  mutable packets : int;
  entry_hits : int array;  (** fires per source-model entry index *)
  mutable fsm_hits : int;  (** resolved through a per-flow state node *)
  mutable index_hits : int;  (** resolved through a hash node *)
  mutable tree_hits : int;  (** resolved through interval/truthiness nodes *)
  mutable scan_hits : int;  (** resolved by the ordered scan *)
  mutable leaf_tests : int;  (** candidate tests under dispatch nodes *)
  mutable scan_tests : int;  (** candidate tests attributable to scanning *)
  mutable miss_no_config : int;
      (** drops because no entry survived static config evaluation *)
  mutable miss_no_match : int;  (** drops because no live entry matched *)
}

type t = {
  mutable plan : Compile.t;  (** swappable between packets, see {!swap_plan} *)
  state : Flowstate.t;
  stats : stats;
  mutable cache : int array;  (** per-literal [(gen lsl 1) lor verdict] stamps *)
  mutable gen : int;
  mutable pmask : int;
      (** dispatch levels crossed by the current packet's walk
          (1 = state, 2 = hash, 4 = tree), for hit attribution *)
  mutable uscratch : Symexec.Value.t array;
      (** reusable buffer for resolved update values, sized by the
          plan's [max_uslots] — updates resolve against the pre-state
          into this scratch, then commit, with no per-fire allocation *)
}

val create : ?capacity:int -> Compile.t -> store:Nfactor.Model_interp.store -> t
(** Fresh engine over [store] (scalars + flow tables, see
    {!Flowstate.create}); [capacity] bounds each flow table with LRU
    eviction — leave it unset for exact interpreter equivalence. *)

val of_flowstate : Compile.t -> Flowstate.t -> t
(** Engine over an existing store — the sharded dataplane creates one
    engine per shard-local store (chained over the shared store). *)

val of_model :
  ?capacity:int ->
  Nfactor.Model.t ->
  config:Nfactor.Model_interp.store ->
  store:Nfactor.Model_interp.store ->
  t
(** Compile against [config] and create in one step. [config] and
    [store] are usually the same extraction-time initial store. *)

val swap_plan : t -> Compile.t -> unit
(** Point the engine at a replacement plan between packets — the
    engine half of RCU reconfiguration: the new plan is built off to
    the side (see {!Compile.compile}), then adopted here by swapping
    one pointer, re-sizing the per-literal verdict cache (slot
    numbering is per-plan) and growing the update scratch. Counters
    survive: entry indices refer to the source model.
    @raise Invalid_argument when the new plan's model has a different
    entry count. *)

type outcome = {
  outputs : Packet.Pkt.t list;
  fired : int option;  (** source-model entry index; [None] = drop by miss *)
}

val step : t -> Packet.Pkt.t -> outcome
(** Process one packet: advance the logical clock, match, emit outputs
    (evaluated against the pre-state), then commit state updates —
    same observable order as the reference interpreter. *)

val step_at : t -> root:Compile.dnode -> Packet.Pkt.t -> outcome
(** {!step}, but walking from [root] instead of the plan's root —
    [root] must be a node of the engine's current plan. The chain
    linker uses this to enter a hop's tree below dispatch nodes it
    already decided at link time (see {!Chainplan}); counters
    attribute exactly as if the walk had crossed the skipped prefix
    minus the skipped nodes' own levels. *)

val step_count_at : t -> root:Compile.dnode -> Packet.Pkt.t -> unit
(** Allocation-free {!step_at} (see {!step_count}). *)

val step_count : t -> Packet.Pkt.t -> unit
(** Allocation-free {!step} for timed loops: same walk, same counters,
    same state effect; no [outcome] record and no output packets are
    built. Caveat: emit value expressions still evaluate (same reads,
    same exceptions), but the packet-field {e setters} are skipped, so
    a setter's coercion error would escape {!step} and not
    [step_count] — no corpus model emits a value its field rejects. *)

val run_batch : t -> Packet.Pkt.t array -> outcome array

(** {1 Deferred execution — the sharded dataplane's phase protocol} *)

type pending
(** A parallel-phase match whose fire was deferred to the serial
    phase: carries the matched entry and the walk's attribution mask,
    so the packet is never walked twice and every counter is recorded
    exactly once. *)

val step_or_defer :
  t ->
  serial:(int -> bool) ->
  count:bool ->
  Packet.Pkt.t ->
  [ `Out of outcome | `Counted | `Defer of pending | `Rewalk ]
(** One parallel-phase step. [`Rewalk]: the walk read through a frozen
    store ({!Flowstate.frozen_hits} advanced), so its verdict may be
    stale — all counters it touched are rolled back and the caller
    must re-run the packet serially with {!step}. [`Defer p]: the walk
    is exact but [serial eidx] holds for the matched entry (its fire
    touches shared state) — the match stands, complete it with
    {!fire_pending} in the serial phase. Otherwise the packet is fully
    handled: [`Out] an outcome, or [`Counted] when [count] (see
    {!step_count}). *)

val fire_pending : t -> count:bool -> Packet.Pkt.t -> pending -> outcome
(** Serial-phase completion of a [`Defer]: attribution and fire only —
    emits and updates evaluate fresh against the now-current state; no
    second walk, no second packet count. Returns a placeholder miss
    outcome when [count]. *)

val replay :
  ?profile:Packet.Traffic.profile -> t -> seed:int -> n:int -> float
(** Drive [n] packets of the seeded {!Packet.Traffic} generator through
    the engine in bounded chunks; returns elapsed wall-clock seconds
    spent stepping only — packet generation happens outside the timed
    sections, and the timed loop uses {!step_count} (allocation-free).
    The stream equals [Packet.Traffic.random_stream ~seed ~n profile]. *)

val replay_churn : ?batch:int -> t -> churn:Packet.Traffic.churn -> n:int -> float
(** {!replay} over a churn generator (constant live-flow pool with
    unbounded turnover, see {!Packet.Traffic.churn_gen}); the
    generator advances, so successive calls continue the stream. *)

val snapshot : t -> Nfactor.Model_interp.store
(** Final state as an interpreter store, comparable against
    {!Nfactor.Model_interp.run}. *)

(** {1 Telemetry} *)

val evictions : t -> int
(** LRU evictions from this engine's own store (its local cells only,
    not stores it chains over). *)

val merge_stats : stats array -> stats
(** Field-wise sum — the merged view of per-shard counters. The packet
    walk happens on exactly one shard (parallel or serial phase), so
    summed counters are comparable 1:1 against a single engine's.
    @raise Invalid_argument on an empty array. *)

val pp_stats : Format.formatter -> t -> unit

val pp_stats_of : evictions:int -> Format.formatter -> stats -> unit
(** {!pp_stats} over explicit counters — for merged multi-shard views. *)

val stats_json : t -> string
(** Counters as a one-line JSON object (packets, per-level hits,
    misses, evictions) — consumed by the CLI and CI smoke checks. *)

val stats_json_of :
  nf:string -> plan:Compile.t -> evictions:int -> stats -> string
(** {!stats_json} over explicit parts — used for per-shard and merged
    views with deterministic field ordering. *)

val class_index : Compile.vdispatch -> Symexec.Value.t -> int
(** Child index a dispatch value routes to — the engine's own routing,
    exposed so the chain linker resolves statically-known dispatch
    values to the same child the runtime walk would take. *)
