(** Batched execution of a compiled plan over a mutable flow-state
    store.

    Per packet the engine walks the plan's segments in order: index
    segments evaluate their key tuple once and hash-probe for
    candidates; scan segments test entries one by one. Every literal
    verdict is cached per packet in a generation-stamped slot array, so
    a literal shared by many entries evaluates at most once. The first
    entry whose remaining slots all hold fires, exactly like
    {!Nfactor.Model_interp.step}. *)

type stats = {
  mutable packets : int;
  entry_hits : int array;  (** fires per source-model entry index *)
  mutable index_hits : int;  (** packets resolved through an index probe *)
  mutable scan_hits : int;  (** packets resolved by an ordered scan *)
  mutable scan_tests : int;  (** entries tested across all scans *)
  mutable miss_no_config : int;
      (** drops because no entry survived static config evaluation *)
  mutable miss_no_match : int;  (** drops because no live entry matched *)
}

type t = {
  plan : Compile.t;
  state : Flowstate.t;
  stats : stats;
  cache : int array;  (** per-literal [(gen lsl 1) lor verdict] stamps *)
  mutable gen : int;
}

val create : ?capacity:int -> Compile.t -> store:Nfactor.Model_interp.store -> t
(** Fresh engine over [store] (scalars + flow tables, see
    {!Flowstate.create}); [capacity] bounds each flow table with LRU
    eviction — leave it unset for exact interpreter equivalence. *)

val of_model :
  ?capacity:int ->
  Nfactor.Model.t ->
  config:Nfactor.Model_interp.store ->
  store:Nfactor.Model_interp.store ->
  t
(** Compile against [config] and create in one step. [config] and
    [store] are usually the same extraction-time initial store. *)

type outcome = {
  outputs : Packet.Pkt.t list;
  fired : int option;  (** source-model entry index; [None] = drop by miss *)
}

val step : t -> Packet.Pkt.t -> outcome
(** Process one packet: advance the logical clock, match, emit outputs
    (evaluated against the pre-state), then commit state updates —
    same observable order as the reference interpreter. *)

val run_batch : t -> Packet.Pkt.t array -> outcome array

val replay :
  ?profile:Packet.Traffic.profile -> t -> seed:int -> n:int -> float
(** Fold [n] packets of the seeded {!Packet.Traffic} generator through
    the engine without materializing the packet list; returns elapsed
    wall-clock seconds. The stream equals
    [Packet.Traffic.random_stream ~seed ~n profile]. *)

val snapshot : t -> Nfactor.Model_interp.store
(** Final state as an interpreter store, comparable against
    {!Nfactor.Model_interp.run}. *)

val pp_stats : Format.formatter -> t -> unit

val stats_json : t -> string
(** Counters as a one-line JSON object (packets, hits, misses,
    evictions) — consumed by the CLI and CI smoke checks. *)
