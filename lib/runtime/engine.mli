(** Batched execution of a compiled plan over a mutable flow-state
    store.

    Per packet the engine walks the plan's decision structure from the
    root: state nodes probe the flow's current state value once and
    branch on it (the per-flow FSM level), expression nodes branch on a
    hash or interval lookup of a packet/store value, truthiness nodes
    on an atom's boolean — until a leaf, whose candidates are tested in
    order on their remaining literals. Every literal verdict is cached
    per packet in a generation-stamped slot array, so a literal shared
    by many entries evaluates at most once. The first entry whose
    remaining slots all hold fires, exactly like
    {!Nfactor.Model_interp.step}.

    Counter taxonomy: a fired packet is attributed to exactly one
    dispatch level — [fsm_hits] when its path crossed a state node,
    else [index_hits] (hash node), else [tree_hits] (interval or
    truthiness node), else [scan_hits] (root-leaf plans and
    residual-match entries, which only the ordered scan resolves).
    Candidate tests under a dispatch node count as [leaf_tests];
    ordered-scan work (undispatched walks and residual candidates)
    counts as [scan_tests]. *)

type stats = {
  mutable packets : int;
  entry_hits : int array;  (** fires per source-model entry index *)
  mutable fsm_hits : int;  (** resolved through a per-flow state node *)
  mutable index_hits : int;  (** resolved through a hash node *)
  mutable tree_hits : int;  (** resolved through interval/truthiness nodes *)
  mutable scan_hits : int;  (** resolved by the ordered scan *)
  mutable leaf_tests : int;  (** candidate tests under dispatch nodes *)
  mutable scan_tests : int;  (** candidate tests attributable to scanning *)
  mutable miss_no_config : int;
      (** drops because no entry survived static config evaluation *)
  mutable miss_no_match : int;  (** drops because no live entry matched *)
}

type t = {
  plan : Compile.t;
  state : Flowstate.t;
  stats : stats;
  cache : int array;  (** per-literal [(gen lsl 1) lor verdict] stamps *)
  mutable gen : int;
  mutable pmask : int;
      (** dispatch levels crossed by the current packet's walk
          (1 = state, 2 = hash, 4 = tree), for hit attribution *)
  uscratch : Symexec.Value.t array;
      (** reusable buffer for resolved update values, sized by the
          plan's [max_uslots] — updates resolve against the pre-state
          into this scratch, then commit, with no per-fire allocation *)
}

val create : ?capacity:int -> Compile.t -> store:Nfactor.Model_interp.store -> t
(** Fresh engine over [store] (scalars + flow tables, see
    {!Flowstate.create}); [capacity] bounds each flow table with LRU
    eviction — leave it unset for exact interpreter equivalence. *)

val of_model :
  ?capacity:int ->
  Nfactor.Model.t ->
  config:Nfactor.Model_interp.store ->
  store:Nfactor.Model_interp.store ->
  t
(** Compile against [config] and create in one step. [config] and
    [store] are usually the same extraction-time initial store. *)

type outcome = {
  outputs : Packet.Pkt.t list;
  fired : int option;  (** source-model entry index; [None] = drop by miss *)
}

val step : t -> Packet.Pkt.t -> outcome
(** Process one packet: advance the logical clock, match, emit outputs
    (evaluated against the pre-state), then commit state updates —
    same observable order as the reference interpreter. *)

val run_batch : t -> Packet.Pkt.t array -> outcome array

val replay :
  ?profile:Packet.Traffic.profile -> t -> seed:int -> n:int -> float
(** Drive [n] packets of the seeded {!Packet.Traffic} generator through
    the engine in bounded chunks; returns elapsed wall-clock seconds
    spent in {!step} only — packet generation happens outside the
    timed sections. The stream equals
    [Packet.Traffic.random_stream ~seed ~n profile]. *)

val snapshot : t -> Nfactor.Model_interp.store
(** Final state as an interpreter store, comparable against
    {!Nfactor.Model_interp.run}. *)

val pp_stats : Format.formatter -> t -> unit

val stats_json : t -> string
(** Counters as a one-line JSON object (packets, per-level hits,
    misses, evictions) — consumed by the CLI and CI smoke checks. *)
