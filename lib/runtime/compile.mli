(** Model → dataplane compiler: partial evaluation against a concrete
    config store plus a dispatch structure over the surviving entries.

    Compilation is sound, never lossy: every transformation preserves
    the reference semantics of {!Nfactor.Model_interp} exactly.

    - {b Static config}: entries whose (packet-free) config literals
      are false under the config store are dropped; the rest never
      re-check config at packet time. Degenerate config literals that
      mention the packet stay as per-packet tests.
    - {b Literal slots}: each distinct match literal (polarity-signed
      term id) compiles once to a closure and is assigned a cache slot,
      so the engine evaluates a literal at most once per packet no
      matter how many entries test it.
    - {b Exact-match index}: runs of consecutive entries that all carry
      positive equality literals [dynamic == static] over a common set
      of tested expressions become a hash table from the evaluated key
      tuple to the candidate entries; interval/residual literals stay
      as per-candidate tests. Entries with [residual_match] literals or
      without such equalities fall back to the ordered scan, preserving
      first-match-wins order across segments. *)

open Symexec

type matcher = Flowstate.t -> Packet.Pkt.t -> bool
type valfn = Flowstate.t -> Packet.Pkt.t -> Value.t

type setter = Packet.Pkt.t -> Value.t -> Packet.Pkt.t

type cupdate =
  | CSet of string * valfn
  | CDict of string * (valfn * valfn option) list
      (** chronological inserts/deletes, as in {!Nfactor.Model.Dict_ops} *)

type centry = {
  eidx : int;  (** index of the entry in the source model *)
  slots : int array;  (** distinct-literal cache slots, in match order *)
  emit : (setter * valfn) list array;  (** compiled [Forward] snapshots; [||] = drop *)
  updates : cupdate list;
}

type segment =
  | Scan of centry array  (** ordered fallback: test entries one by one *)
  | Index of {
      keys : valfn array;  (** tested expressions, evaluated once per probe *)
      table : (Value.t list, centry array) Hashtbl.t;
          (** evaluated key tuple → candidates in table order *)
    }

type t = {
  model : Nfactor.Model.t;
  lit_fns : matcher array;  (** one evaluator per distinct literal slot *)
  segments : segment array;  (** walked in order; first match wins *)
  live : int;  (** entries surviving static config evaluation *)
  indexed : int;  (** live entries reachable through an index segment *)
  dropped_static : int;  (** entries removed because config is statically false *)
}

val compile : Nfactor.Model.t -> config:Nfactor.Model_interp.store -> t
(** [config] is the concrete store the model runs under (the
    extraction-time initial store); only cfgVar values are consulted
    statically, oisVars stay dynamic. *)

val pp_plan : Format.formatter -> t -> unit
(** One-line summary: live/indexed/dropped entries and segment shape. *)

(** {1 Exposed for tests} *)

val compile_expr : pkt_var:string -> Sexpr.t -> valfn
(** Compiled evaluation, equal to {!Nfactor.Model_interp.eval} on every
    input (including its [Unresolved]/[Type_error] behavior). *)

val compile_literal : pkt_var:string -> Solver.literal -> matcher
(** Compiled {!Nfactor.Model_interp.literal_holds}. *)
