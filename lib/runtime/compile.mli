(** Model → dataplane compiler: partial evaluation against a concrete
    config store plus a decision structure over the surviving entries.

    Compilation is sound, never lossy: every transformation preserves
    the reference semantics of {!Nfactor.Model_interp} exactly.

    - {b Static config}: entries whose (packet-free) config literals
      are false under the config store are dropped; the rest never
      re-check config at packet time. Degenerate config literals that
      mention the packet stay as per-packet tests.
    - {b Literal slots}: each distinct match literal (polarity-signed
      term id) compiles once to a closure and is assigned a cache slot,
      so the engine evaluates a literal at most once per packet no
      matter how many entries test it.
    - {b Shared subterms}: terms are hash-consed, so the compiler
      counts references across everything the plan evaluates and gives
      each compound subterm referenced from two or more places (flow-key
      tuples, dict probes shared by dispatch, literals and updates) a
      per-step value cache keyed on the store's logical clock. All
      evaluation within one step reads the pre-state, so the memo is
      semantically invisible; swallowable evaluation failures are
      cached and re-raised identically.
    - {b Decision structure}: the live entry table compiles into a DAG
      of dispatch nodes. {e State nodes} probe one per-flow state value
      (table base + key expression, recognized by
      {!Nfactor.Fsm.state_key_of_literal}) and branch on its value
      class — this is the per-flow FSM level: the flow's current state
      value selects the branch. {e Expression nodes} branch on a
      packet/store expression compared against static constants, as a
      hash on equality constants or, when ordered comparisons ([<],
      [<=], [>], [>=], [!=] over integers) are present, as an interval
      split over the sorted cuts. {e Truthiness nodes} branch on an
      arbitrary atom's boolean value. Every class decides each node
      literal exactly as {!Nfactor.Model_interp.literal_holds} would
      (including the false-on-unresolved rule, via explicit
      unresolved/absent/non-int/non-bool classes), so an entry dropped
      from a branch could not have matched there. Leaves keep the
      original entry order with only undecided literals left to test —
      first-match-wins survives by construction.
    - {b Residual scan}: entries carrying [residual_match] literals are
      never dispatched; they ride through every branch into every leaf
      and are tested in order (the surviving ordered scan). *)

open Symexec

type matcher = Flowstate.t -> Packet.Pkt.t -> bool
type valfn = Flowstate.t -> Packet.Pkt.t -> Value.t

type setter = Packet.Pkt.t -> Value.t -> Packet.Pkt.t

type cupdate =
  | CSet of string * valfn
  | CDict of string * (valfn * valfn option) list
      (** chronological inserts/deletes, as in {!Nfactor.Model.Dict_ops} *)

type centry = {
  eidx : int;  (** index of the entry in the source model *)
  scan : bool;  (** residual-match entry: resolved by scan, not dispatch *)
  slots : int array;  (** undecided distinct-literal cache slots, match order *)
  emit : (setter * valfn) list array;  (** compiled [Forward] snapshots; [||] = drop *)
  updates : (cupdate * bool) list;
      (** resolve all in order (exception parity); commit only flagged
          ones — the last update per variable, as the reference
          interpreter's [Smap.add] fold makes earlier same-variable
          updates unobservable *)
  uslots : int;
      (** resolved values [updates] produces, in resolve order — sizes
          the engine's reusable scratch buffer *)
}

(** Value dispatch within a node: hash on equality constants, or
    interval split over sorted integer cuts. [VRange.classes] has
    [2k+1] slots for [k] cuts — even positions are the open gaps
    between consecutive cuts (and the two unbounded ends), odd
    positions the cuts themselves — each holding a child index. *)
type vdispatch =
  | VHash of { table : (Value.t, int) Hashtbl.t; other : int }
  | VRange of { cuts : int array; classes : int array; non_int : int }

(** One dispatch step. Child indices point into [children]; the
    labeled classes route evaluation failures exactly like the
    reference evaluator (unresolved reads and type errors make a
    literal false, whatever its polarity). *)
type dnode =
  | Leaf of centry array  (** ordered candidates: test remaining slots, first wins *)
  | Dstate of {
      base : string;  (** per-flow table name *)
      key : valfn;  (** flow key expression *)
      key_src : Sexpr.t;  (** the key's source term, for link-time analysis *)
      vdis : vdispatch;  (** on the stored value *)
      absent : int;  (** table exists, key absent *)
      unres : int;  (** table missing / key evaluation raised *)
      children : dnode array;
    }
  | Dexpr of {
      expr : valfn;
      src : Sexpr.t;  (** the dispatched term — lets {!Chainplan} partially
          evaluate this node when an upstream hop pins its packet reads *)
      vdis : vdispatch;
      unres : int;
      children : dnode array;
    }
  | Dbool of {
      expr : valfn;
      src : Sexpr.t;
      truthy : int;  (** [Bool true] or nonzero [Int] *)
      falsy : int;  (** [Bool false] or [Int 0] *)
      nonbool : int;
      unres : int;
      children : dnode array;
    }

type node_counts = {
  n_state : int;  (** per-flow FSM dispatch nodes *)
  n_hash : int;  (** expression hash nodes *)
  n_range : int;  (** expression interval nodes *)
  n_bool : int;  (** truthiness nodes *)
  n_leaves : int;  (** distinct constructed leaves *)
}

type t = {
  model : Nfactor.Model.t;
  lit_fns : matcher array;  (** one evaluator per distinct literal slot *)
  root : dnode;  (** decision structure over the live entries *)
  live : int;  (** entries surviving static config evaluation *)
  live_idx : bool array;
      (** per source-model entry index: survived static config
          evaluation (length = [entry_count model]) *)
  shared : bool;
      (** compiled for read-only sharing across domains: the per-step
          value memo is omitted (see {!compile}) *)
  indexed : int;  (** live entries resolved through dispatch nodes *)
  scanned : int;  (** live entries only the ordered scan can resolve *)
  dropped_static : int;  (** entries removed because config is statically false *)
  nodes : node_counts;
  max_uslots : int;  (** largest [centry.uslots], sizing the engine scratch *)
}

val compile : ?shared:bool -> Nfactor.Model.t -> config:Nfactor.Model_interp.store -> t
(** [config] is the concrete store the model runs under (the
    extraction-time initial store); only cfgVar values are consulted
    statically, oisVars stay dynamic.

    {b Mutability audit.} A compiled plan is read-only at packet time
    with one exception: the per-step value memo wrapped around shared
    compound subterms caches [(store, clock) → value] in closure refs.
    [shared:true] (default [false]) omits that memo, making the whole
    plan — literal closures, dispatch nodes, hash tables — immutable
    after compilation, so one plan can be stepped concurrently by any
    number of engines on different domains. The per-packet literal
    verdict cache is unaffected (it lives in each {!Engine.t}). The
    cost is re-evaluating subterms shared between dispatch keys and
    literals once per use instead of once per packet. *)

val pp_plan : Format.formatter -> t -> unit
(** One-line summary: live/dispatched/dropped entries and node shape. *)

(** {1 Exposed for tests} *)

val compile_expr : pkt_var:string -> Sexpr.t -> valfn
(** Compiled evaluation, equal to {!Nfactor.Model_interp.eval} on every
    input (including its [Unresolved]/[Type_error] behavior). *)

val compile_literal : pkt_var:string -> Solver.literal -> matcher
(** Compiled {!Nfactor.Model_interp.literal_holds}. *)
