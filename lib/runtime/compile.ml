(** Model → dataplane compiler. See the interface for the strategy;
    the invariant throughout is exact agreement with
    {!Nfactor.Model_interp}: same values, same false-on-unresolved
    literal semantics, same evaluation order for effects that can
    raise. *)

open Symexec

type matcher = Flowstate.t -> Packet.Pkt.t -> bool
type valfn = Flowstate.t -> Packet.Pkt.t -> Value.t
type setter = Packet.Pkt.t -> Value.t -> Packet.Pkt.t

type cupdate =
  | CSet of string * valfn
  | CDict of string * (valfn * valfn option) list

type centry = {
  eidx : int;
  scan : bool;
  slots : int array;
  emit : (setter * valfn) list array;
  updates : (cupdate * bool) list;
  uslots : int;
}

type vdispatch =
  | VHash of { table : (Value.t, int) Hashtbl.t; other : int }
  | VRange of { cuts : int array; classes : int array; non_int : int }

type dnode =
  | Leaf of centry array
  | Dstate of {
      base : string;
      key : valfn;
      key_src : Sexpr.t;
      vdis : vdispatch;
      absent : int;
      unres : int;
      children : dnode array;
    }
  | Dexpr of {
      expr : valfn;
      src : Sexpr.t;
      vdis : vdispatch;
      unres : int;
      children : dnode array;
    }
  | Dbool of {
      expr : valfn;
      src : Sexpr.t;
      truthy : int;
      falsy : int;
      nonbool : int;
      unres : int;
      children : dnode array;
    }

type node_counts = {
  n_state : int;
  n_hash : int;
  n_range : int;
  n_bool : int;
  n_leaves : int;
}

type t = {
  model : Nfactor.Model.t;
  lit_fns : matcher array;
  root : dnode;
  live : int;
  live_idx : bool array;
  shared : bool;
  indexed : int;
  scanned : int;
  dropped_static : int;
  nodes : node_counts;
  max_uslots : int;
}

let unresolved name = raise (Nfactor.Model_interp.Unresolved name)

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

(* [Value.Int] boxes for packet-field reads dominate steady-state
   minor allocation; ports, flags, protocol, TTL and typical lengths
   fit 16 bits, so a static intern table covers them. Sharing the
   boxes is safe — value equality is structural everywhere. *)
let small_int = Array.init 65536 (fun i -> Value.Int i)
let vint n = if n land 0xffff = n then Array.unsafe_get small_int n else Value.Int n
let vtrue = Value.Bool true
let vfalse = Value.Bool false

(* Packet field reads bind the record accessor at compile time instead
   of re-dispatching on the field name per packet. *)
let field_reader name f : valfn =
  match f with
  | "ip_src" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ip_src
  | "ip_dst" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ip_dst
  | "ip_proto" -> fun _ (p : Packet.Pkt.t) -> vint p.Packet.Pkt.ip_proto
  | "ip_ttl" -> fun _ (p : Packet.Pkt.t) -> vint p.Packet.Pkt.ip_ttl
  | "ip_len" -> fun _ (p : Packet.Pkt.t) -> vint p.Packet.Pkt.ip_len
  | "sport" -> fun _ (p : Packet.Pkt.t) -> vint p.Packet.Pkt.sport
  | "dport" -> fun _ (p : Packet.Pkt.t) -> vint p.Packet.Pkt.dport
  | "tcp_flags" -> fun _ (p : Packet.Pkt.t) -> vint p.Packet.Pkt.tcp_flags
  | "seq" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.seq
  | "ack" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ack
  | "payload" -> fun _ (p : Packet.Pkt.t) -> Value.Str p.Packet.Pkt.payload
  | f when Packet.Headers.is_int_field f ->
      fun _ p -> vint (Packet.Pkt.get_int p f)
  | f when Packet.Headers.is_str_field f ->
      fun _ p -> Value.Str (Packet.Pkt.get_str p f)
  | _ -> fun _ _ -> unresolved name

(* [wrap e thunk] intercepts every node's compilation, so [compile]
   can memoize per hash-consed term id and insert per-step value
   caches on shared subterms; the plain [compile_expr] uses an
   identity wrap. *)
let rec gen_expr ~wrap ~pkt_var (e : Sexpr.t) : valfn =
  wrap e (fun () -> gen_raw ~wrap ~pkt_var e)

and gen_raw ~wrap ~pkt_var (e : Sexpr.t) : valfn =
  let prefix = pkt_var ^ "." in
  let plen = String.length prefix in
  let c = gen_expr ~wrap ~pkt_var in
  match Sexpr.view e with
  | Sexpr.Const v -> fun _ _ -> v
  | Sexpr.Sym s ->
      if String.length s > plen && String.sub s 0 plen = prefix then
        field_reader s (String.sub s plen (String.length s - plen))
      else fun st _ -> Flowstate.read st s
  | Sexpr.Bin (op, a, b) ->
      let fa = c a and fb = c b in
      fun st pkt -> Value.binop op (fa st pkt) (fb st pkt)
  | Sexpr.Not a ->
      let fa = c a in
      fun st pkt -> Value.unop Nfl.Ast.Not (fa st pkt)
  | Sexpr.Neg a ->
      let fa = c a in
      fun st pkt -> Value.unop Nfl.Ast.Neg (fa st pkt)
  | Sexpr.Tup es ->
      let fs = List.map c es in
      fun st pkt -> Value.Tuple (List.map (fun f -> f st pkt) fs)
  | Sexpr.Lst es ->
      let fs = List.map c es in
      fun st pkt -> Value.List (List.map (fun f -> f st pkt) fs)
  | Sexpr.Get (cont, i) ->
      let fc = c cont and fi = c i in
      fun st pkt -> Value.index (fc st pkt) (fi st pkt)
  | Sexpr.Ufun (f, args) ->
      let fs = List.map c args in
      fun st pkt -> Value.apply_pure f (List.map (fun g -> g st pkt) fs)
  | Sexpr.Mem (d, k) -> compile_dict_query ~wrap ~pkt_var `Mem d k
  | Sexpr.Dget (d, k) -> compile_dict_query ~wrap ~pkt_var `Get d k
  | Sexpr.Ite (g, a, b) ->
      (* Guard selects one compiled arm per call; agrees with the
         reference evaluator on Bool and Int-truthiness guards. *)
      let fg = c g and fa = c a and fb = c b in
      fun st pkt -> (
        match fg st pkt with
        | Value.Bool cond -> if cond then fa st pkt else fb st pkt
        | Value.Int n -> if n <> 0 then fa st pkt else fb st pkt
        | v -> raise (Value.Type_error (Fmt.str "ite guard: %a" Value.pp v)))

(* Dictionary atoms, lookup-only. The reference evaluator materializes
   base + writes into a full dict and then queries it; at runtime the
   key is concrete, so the last chronological write for that key (or,
   failing that, the base table) decides. Evaluation order matches the
   reference exactly — base resolution, then every write (key and
   inserted value, chronologically), then the queried key — so
   anything that raises, raises on both sides. *)
and compile_dict_query ~wrap ~pkt_var kind (d : Sexpr.dict_state) k : valfn =
  let c = gen_expr ~wrap ~pkt_var in
  let base = d.Sexpr.base in
  let is_empty = base = Sexpr.empty_base in
  let fk = c k in
  let missing = "missing key in " ^ base in
  match d.Sexpr.writes with
  | [] when not is_empty -> (
      (* Write-free probe of a live table — the overwhelmingly common
         shape — skips the per-call handle option and write-list
         allocations entirely. Order is unchanged: base resolution
         first, then the key. *)
      match kind with
      | `Mem ->
          fun st pkt ->
            let h = Flowstate.handle st base in
            if Flowstate.handle_mem st h (fk st pkt) then vtrue else vfalse
      | `Get -> (
          fun st pkt ->
            let h = Flowstate.handle st base in
            let key = fk st pkt in
            match Flowstate.handle_get st h key with
            | v -> v
            | exception Stdlib.Not_found -> unresolved missing))
  | writes ->
      let writes_c =
        (* chronological order, as [dict_after_writes] applies them *)
        List.rev_map (fun (wk, u) -> (c wk, Option.map c u)) writes
      in
      fun st pkt ->
        let h = if is_empty then None else Some (Flowstate.handle st base) in
        let ws =
          List.map
            (fun (kf, uf) -> (kf st pkt, Option.map (fun f -> f st pkt) uf))
            writes_c
        in
        let key = fk st pkt in
        (* last chronological write for [key] wins, like the dict_set fold *)
        let decided =
          List.fold_left
            (fun acc (wk, u) -> if Value.equal wk key then Some u else acc)
            None ws
        in
        (match (kind, decided) with
        | `Mem, Some (Some _) -> vtrue
        | `Mem, Some None -> vfalse
        | `Get, Some (Some v) -> v
        | `Get, Some None -> unresolved missing
        | `Mem, None -> (
            match h with
            | None -> vfalse
            | Some h -> if Flowstate.handle_mem st h key then vtrue else vfalse)
        | `Get, None -> (
            match Option.bind h (fun h -> Flowstate.handle_find st h key) with
            | Some v -> v
            | None -> unresolved missing))

let no_wrap _ thunk = thunk ()
let compile_expr ~pkt_var e = gen_expr ~wrap:no_wrap ~pkt_var e

let literal_matcher (f : valfn) ~positive : matcher =
  fun st pkt ->
   match f st pkt with
   | Value.Bool b -> b = positive
   | Value.Int n -> n <> 0 = positive
   | _ -> false
   | exception Value.Type_error _ -> false
   | exception Nfactor.Model_interp.Unresolved _ -> false

let compile_literal ~pkt_var (l : Solver.literal) : matcher =
  literal_matcher (compile_expr ~pkt_var l.Solver.atom) ~positive:l.Solver.positive

(* Per-step value memo for a compiled expression shared across
   evaluation sites (dispatch keys, literal atoms, updates, emits).
   Everything in one step evaluates against the pre-state, and the
   engine bumps the store clock exactly once per packet, so (store
   identity, clock) identifies the step; recency stamps are idempotent
   within it, and the two swallowable evaluation failures replay
   exactly. Only valid under the engine's clock discipline — never
   applied by the bare {!compile_expr}. *)
let cached (f : valfn) : valfn =
  let c_st : Flowstate.t option ref = ref None in
  let c_clk = ref min_int in
  let c_v = ref (Value.Bool false) in
  let c_exn : exn option ref = ref None in
  fun st pkt ->
    let clk = Flowstate.clock st in
    if !c_clk = clk && (match !c_st with Some s -> s == st | None -> false)
    then match !c_exn with None -> !c_v | Some e -> raise e
    else begin
      (* the only allocation on this path is [Some st] when the store
         itself changes, so steady-state misses allocate nothing *)
      (match !c_st with Some s when s == st -> () | _ -> c_st := Some st);
      c_clk := clk;
      match f st pkt with
      | v ->
          c_exn := None;
          c_v := v;
          v
      | exception ((Value.Type_error _ | Nfactor.Model_interp.Unresolved _) as e)
        ->
          c_exn := Some e;
          raise e
    end

(* ------------------------------------------------------------------ *)
(* Static evaluation against the config store                          *)
(* ------------------------------------------------------------------ *)

(* An expression is static when every free symbol is a cfgVar with a
   value in the config store: cfgVars never change during a run, so
   its value can be baked at compile time. oisVars and packet fields
   are dynamic by definition. *)
let is_static ~(model : Nfactor.Model.t) ~config e =
  Sexpr.Sset.for_all
    (fun s ->
      List.mem s model.Nfactor.Model.cfg_vars
      && Nfactor.Model_interp.Smap.mem s config)
    (Sexpr.syms e)

let static_value ~(model : Nfactor.Model.t) ~config e =
  if not (is_static ~model ~config e) then None
  else
    match
      Nfactor.Model_interp.eval ~pkt_var:model.Nfactor.Model.pkt_var config
        Nfactor.Model_interp.null_pkt e
    with
    | v -> Some v
    | exception _ -> None

(* ------------------------------------------------------------------ *)
(* Actions and updates                                                 *)
(* ------------------------------------------------------------------ *)

(* Like [field_reader]: bind the record update at compile time instead
   of re-dispatching on the field name per packet. *)
let field_setter f : setter =
  match f with
  | "ip_src" -> fun p v -> { p with Packet.Pkt.ip_src = Value.as_int v }
  | "ip_dst" -> fun p v -> { p with Packet.Pkt.ip_dst = Value.as_int v }
  | "ip_proto" -> fun p v -> { p with Packet.Pkt.ip_proto = Value.as_int v }
  | "ip_ttl" -> fun p v -> { p with Packet.Pkt.ip_ttl = Value.as_int v }
  | "ip_len" -> fun p v -> { p with Packet.Pkt.ip_len = Value.as_int v }
  | "sport" -> fun p v -> { p with Packet.Pkt.sport = Value.as_int v }
  | "dport" -> fun p v -> { p with Packet.Pkt.dport = Value.as_int v }
  | "tcp_flags" -> fun p v -> { p with Packet.Pkt.tcp_flags = Value.as_int v }
  | "seq" -> fun p v -> { p with Packet.Pkt.seq = Value.as_int v }
  | "ack" -> fun p v -> { p with Packet.Pkt.ack = Value.as_int v }
  | f when Packet.Headers.is_int_field f ->
      fun p v -> Packet.Pkt.set_int p f (Value.as_int v)
  | f ->
      fun p v ->
        (match v with
        | Value.Str s -> Packet.Pkt.set_str p f s
        | _ -> unresolved ("payload field " ^ f))

(* Emit snapshots cover every header field, but most assignments are
   the field's own incoming value (forwarding NFs rewrite one or two
   fields, or none). An identity write — [Sym "pkt.f"] assigned to
   [f] — is a pure non-raising read producing an equal packet, so
   eliding it is unobservable and saves a record copy per field. *)
let compile_action ~cexpr ~pkt_var (a : Nfactor.Model.pkt_action) =
  match a with
  | Nfactor.Model.Drop -> [||]
  | Nfactor.Model.Forward snaps ->
      Array.of_list
        (List.map
           (List.filter_map (fun (f, e) ->
                match Sexpr.view e with
                | Sexpr.Sym s when s = pkt_var ^ "." ^ f -> None
                | _ -> Some (field_setter f, cexpr e)))
           snaps)

let compile_update ~cexpr (v, u) =
  match u with
  | Nfactor.Model.Set_scalar e -> CSet (v, cexpr e)
  | Nfactor.Model.Dict_ops ops ->
      CDict (v, List.map (fun (k, op) -> (cexpr k, Option.map cexpr op)) ops)

(* The reference interpreter computes every update from the pre-state
   and folds them with [Smap.add], so when one entry updates a variable
   twice only the last write per variable is observable. Variable names
   are static, so that choice compiles to a per-update commit flag; the
   engine still resolves every update (exception parity) but commits
   only the flagged ones. *)
let compile_updates ~cexpr (us : (string * Nfactor.Model.state_update) list) =
  let rec flag = function
    | [] -> []
    | (v, u) :: rest ->
        let commits = not (List.exists (fun (v', _) -> v' = v) rest) in
        (compile_update ~cexpr (v, u), commits) :: flag rest
  in
  flag us

(* ------------------------------------------------------------------ *)
(* Compilation proper                                                  *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Literal classification                                              *)
(* ------------------------------------------------------------------ *)

(* How a literal's atom relates to the discriminator value it can
   dispatch on. *)
type shape =
  | Smem  (** atom is [key in base]: true iff the probed slot exists *)
  | Scmp of Nfl.Ast.binop * Value.t
      (** atom is [(discriminator value) OP constant] *)
  | Sbool  (** the whole atom, evaluated for truthiness *)

(* What a decision node evaluates once per packet. *)
type disc =
  | Kstate of string * Sexpr.t  (** per-flow table probe: base, key expr *)
  | Kexpr of Sexpr.t  (** packet/store expression value *)
  | Kbool of Sexpr.t  (** whole-atom truthiness *)

let disc_key = function
  | Kstate (b, k) -> (1, b, Sexpr.id k)
  | Kexpr e -> (2, "", Sexpr.id e)
  | Kbool e -> (3, "", Sexpr.id e)

(* Classify one literal. Every literal is classifiable — [Kbool] on
   the whole atom is the universal fallback — so the ordered scan
   survives only for [residual_match] entries, which never reach this
   function. Ordered comparisons qualify for value dispatch only
   against integer constants (interval structure); everything else
   dispatches on truthiness, which is still exact. *)
let classify ~model ~config (l : Solver.literal) =
  let cmp_shape op other =
    match static_value ~model ~config other with
    | Some c -> (
        match (op, c) with
        | (Nfl.Ast.Eq | Nfl.Ast.Ne), _ -> Some (op, c)
        | _, Value.Int _ -> Some (op, c)
        | _ -> None)
    | None -> None
  in
  let fallback = (Kbool l.Solver.atom, Sbool) in
  match Nfactor.Fsm.state_key_of_literal l with
  | Some (sk, `Mem) ->
      (Kstate (sk.Nfactor.Fsm.sk_base, sk.Nfactor.Fsm.sk_key), Smem)
  | Some (sk, `Value (op, other)) -> (
      match cmp_shape op other with
      | Some (op, c) ->
          (Kstate (sk.Nfactor.Fsm.sk_base, sk.Nfactor.Fsm.sk_key), Scmp (op, c))
      | None -> fallback)
  | None -> (
      match Sexpr.view l.Solver.atom with
      | Sexpr.Bin (op, a, b) when Nfactor.Fsm.is_cmp op -> (
          match
            (static_value ~model ~config a, static_value ~model ~config b)
          with
          | None, Some _ -> (
              match cmp_shape op b with
              | Some (op, c) -> (Kexpr a, Scmp (op, c))
              | None -> fallback)
          | Some _, None -> (
              match cmp_shape (Nfactor.Fsm.flip_cmp op) a with
              | Some (op, c) -> (Kexpr b, Scmp (op, c))
              | None -> fallback)
          | _ -> fallback)
      | _ -> fallback)

(* ------------------------------------------------------------------ *)
(* Class verdicts                                                      *)
(* ------------------------------------------------------------------ *)

(* A dispatch class, described precisely enough to decide every node
   literal on it. [Cgap] bounds are exclusive and both ends (when
   present) are cuts, so no cut lies inside the interval. *)
type vclass =
  | Cpoint of Value.t  (** discriminator equals this constant *)
  | Cgap of int option * int option  (** an [Int] strictly inside the open interval *)
  | Cother  (** VHash: equals none of the table constants *)
  | Cnonint  (** VRange: not an [Int] *)
  | Cabsent  (** Kstate: table exists, key absent *)
  | Cunres  (** evaluation raised / table missing *)
  | Ctruthy
  | Cfalsy
  | Cnonbool

(* The atom's truth on a class; [None] means evaluation raises or
   yields a non-boolean — the literal is false regardless of polarity,
   mirroring [compile_literal]. *)
let atom_verdict (sh : shape) (c : vclass) : bool option =
  let ord cmp op =
    match op with
    | Nfl.Ast.Lt -> Some (cmp < 0)
    | Nfl.Ast.Le -> Some (cmp <= 0)
    | Nfl.Ast.Gt -> Some (cmp > 0)
    | Nfl.Ast.Ge -> Some (cmp >= 0)
    | _ -> None
  in
  match (sh, c) with
  | _, Cunres -> None
  | Smem, Cabsent -> Some false
  | Smem, _ -> Some true
  | Scmp _, Cabsent -> None (* a read of a missing key is unresolved *)
  | Scmp (op, k), Cpoint v -> (
      match op with
      | Nfl.Ast.Eq -> Some (Value.equal v k)
      | Nfl.Ast.Ne -> Some (not (Value.equal v k))
      | _ -> (
          match (v, k) with
          | Value.Int a, Value.Int b -> ord (compare a b) op
          | Value.Str a, Value.Str b -> ord (compare a b) op
          | _ -> None))
  | Scmp (op, k), Cgap (_, hi) -> (
      match op with
      | Nfl.Ast.Eq -> Some false (* k is a cut; cuts are excluded from gaps *)
      | Nfl.Ast.Ne -> Some true
      | _ ->
          let kn = Value.as_int k in
          (* k is never strictly inside the gap, so the whole gap sits
             on one side of it: below k iff the gap's upper cut <= k. *)
          let below = match hi with Some h -> kn >= h | None -> false in
          ord (if below then -1 else 1) op)
  | Scmp (op, _), Cother -> (
      match op with
      | Nfl.Ast.Eq -> Some false
      | Nfl.Ast.Ne -> Some true
      | _ -> None (* unreachable: ordered literals never join a VHash node *))
  | Scmp (op, k), Cnonint -> (
      match op with
      (* k is an Int in VRange mode; a non-Int value can't equal it *)
      | Nfl.Ast.Eq -> Some false
      | Nfl.Ast.Ne -> Some true
      | _ -> ignore k; None (* ordered compare against a non-Int raises *))
  | Sbool, Ctruthy -> Some true
  | Sbool, Cfalsy -> Some false
  | Sbool, Cnonbool -> None
  | Sbool, (Cpoint _ | Cgap _ | Cother | Cnonint | Cabsent) -> None
  | Scmp _, (Ctruthy | Cfalsy | Cnonbool) -> None

let literal_verdict (sh : shape) ~positive (c : vclass) =
  match atom_verdict sh c with Some b -> b = positive | None -> false

(* Per-entry intermediate form before decision-structure construction. *)
type pre = {
  p_eidx : int;
  p_lits : Solver.literal list;  (** dynamic-config ++ flow ++ state, match order *)
  p_scan : bool;  (** carries residual_match: never dispatched, only scanned *)
  p_entry : Nfactor.Model.entry;
}

let compile ?(shared = false) (model : Nfactor.Model.t) ~config =
  let pkt_var = model.Nfactor.Model.pkt_var in
  (* 1. Partial-evaluate config: decide each distinct static config
     literal once; statically-false entries disappear from the plan. *)
  let lit_verdict : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let static_holds (l : Solver.literal) =
    let key = Solver.lit_key l in
    match Hashtbl.find_opt lit_verdict key with
    | Some b -> b
    | None ->
        let b =
          Nfactor.Model_interp.literal_holds ~pkt_var config Nfactor.Model_interp.null_pkt l
        in
        Hashtbl.add lit_verdict key b;
        b
  in
  let pres =
    List.mapi
      (fun i (e : Nfactor.Model.entry) ->
        let static_cfg, dyn_cfg =
          List.partition
            (fun (l : Solver.literal) -> is_static ~model ~config l.Solver.atom)
            e.Nfactor.Model.config
        in
        if not (List.for_all static_holds static_cfg) then None
        else
          let match_lits = e.Nfactor.Model.flow_match @ e.Nfactor.Model.state_match in
          (* residual_match is informational for matching (the reference
             interpreter ignores it), but its presence marks the entry
             as not fully classified — too risky to dispatch, scan it. *)
          Some
            {
              p_eidx = i;
              p_lits = dyn_cfg @ match_lits;
              p_scan = e.Nfactor.Model.residual_match <> [];
              p_entry = e;
            })
      model.Nfactor.Model.entries
    |> List.filter_map Fun.id
  in
  (* 2. Shared-subterm analysis. Terms are hash-consed, so one pass
     over every expression the plan will evaluate (literal atoms,
     emits, updates) counts how many places reference each node; a
     compound node referenced twice or more gets a per-step value
     cache (see [cached]) so dispatch keys, match literals and updates
     that share structure — flow-key tuples, dict probes — evaluate it
     once per packet. The wrap memo also shares the compiled closure
     itself per term id. *)
  let refs : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec count e =
    let id = Sexpr.id e in
    match Hashtbl.find_opt refs id with
    | Some n -> Hashtbl.replace refs id (n + 1)
    | None -> (
        Hashtbl.add refs id 1;
        match Sexpr.view e with
        | Sexpr.Const _ | Sexpr.Sym _ -> ()
        | Sexpr.Bin (_, a, b) | Sexpr.Get (a, b) ->
            count a;
            count b
        | Sexpr.Not a | Sexpr.Neg a -> count a
        | Sexpr.Tup es | Sexpr.Lst es | Sexpr.Ufun (_, es) -> List.iter count es
        | Sexpr.Mem (d, k) | Sexpr.Dget (d, k) ->
            List.iter
              (fun (wk, u) ->
                count wk;
                Option.iter count u)
              d.Sexpr.writes;
            count k
        | Sexpr.Ite (g, a, b) ->
            count g;
            count a;
            count b)
  in
  List.iter
    (fun p ->
      List.iter (fun (l : Solver.literal) -> count l.Solver.atom) p.p_lits;
      (match p.p_entry.Nfactor.Model.pkt_action with
      | Nfactor.Model.Drop -> ()
      | Nfactor.Model.Forward snaps ->
          List.iter (List.iter (fun (_, e) -> count e)) snaps);
      List.iter
        (fun (_, u) ->
          match u with
          | Nfactor.Model.Set_scalar e -> count e
          | Nfactor.Model.Dict_ops ops ->
              List.iter
                (fun (k, op) ->
                  count k;
                  Option.iter count op)
                ops)
        p.p_entry.Nfactor.Model.state_update)
    pres;
  let wrapped : (int, valfn) Hashtbl.t = Hashtbl.create 256 in
  (* In [shared] mode the per-step value memo is omitted: its
     (store, clock, value) refs are the only mutable state a compiled
     plan carries, and several domains stepping one plan would race on
     them. Closure sharing per term id stays — closures themselves are
     immutable. Everything else in a plan (literal table, dispatch
     nodes, VHash tables) is built here and only read at run time. *)
  let wrap e thunk =
    let id = Sexpr.id e in
    match Hashtbl.find_opt wrapped id with
    | Some f -> f
    | None ->
        let raw = thunk () in
        let multi =
          match Hashtbl.find_opt refs id with Some n -> n >= 2 | None -> false
        in
        let compound =
          match Sexpr.view e with
          | Sexpr.Const _ | Sexpr.Sym _ -> false
          | _ -> true
        in
        let f = if multi && compound && not shared then cached raw else raw in
        Hashtbl.add wrapped id f;
        f
  in
  let cexpr e = gen_expr ~wrap ~pkt_var e in
  (* 3. Literal slots: one compiled closure per distinct literal. *)
  let slot_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let fns_rev = ref [] in
  let nslots = ref 0 in
  let slot (l : Solver.literal) =
    let key = Solver.lit_key l in
    match Hashtbl.find_opt slot_of key with
    | Some s -> s
    | None ->
        let s = !nslots in
        incr nslots;
        Hashtbl.add slot_of key s;
        fns_rev :=
          literal_matcher (cexpr l.Solver.atom) ~positive:l.Solver.positive
          :: !fns_rev;
        s
  in
  let max_uslots = ref 0 in
  let centry_of ?(consumed = []) (p : pre) =
    let slots =
      List.filter_map
        (fun (l : Solver.literal) ->
          if List.mem (Solver.lit_key l) consumed then None else Some (slot l))
        p.p_lits
    in
    (* a literal tested twice in one entry yields the same verdict;
       keep the first occurrence only *)
    let seen = Hashtbl.create 8 in
    let slots =
      List.filter
        (fun s ->
          if Hashtbl.mem seen s then false
          else begin
            Hashtbl.add seen s ();
            true
          end)
        slots
    in
    let updates = compile_updates ~cexpr p.p_entry.Nfactor.Model.state_update in
    let uslots : int =
      List.fold_left
        (fun acc (u, _) ->
          match u with
          | CSet _ -> acc + 1
          | CDict (_, ops) ->
              List.fold_left
                (fun a (_, v) -> a + (match v with Some _ -> 2 | None -> 1))
                acc ops)
        0 updates
    in
    if uslots > !max_uslots then max_uslots := uslots;
    {
      eidx = p.p_eidx;
      scan = p.p_scan;
      slots = Array.of_list slots;
      emit = compile_action ~cexpr ~pkt_var p.p_entry.Nfactor.Model.pkt_action;
      updates;
      uslots;
    }
  in
  (* 4. Decision-structure construction. A candidate is an entry plus
     the set of its literals already decided (consumed) by the nodes
     above it. Each node picks the discriminator constraining the most
     candidates, enumerates its value classes, decides every node
     literal per class via [literal_verdict] (false ⇒ the entry cannot
     match, drop it; all true ⇒ consume them), and recurses. Filtering
     keeps candidate order, so each leaf is an order-preserving subset
     of the entry list and first-match-wins survives: an entry dropped
     on a class has a literal the interpreter would also find false.
     Residual-match entries pass through every class untouched — they
     are scanned, never dispatched. Identical residual candidate sets
     share subtrees through a signature memo; a node budget bounds
     pathological models. *)
  let cls_of : (int, int * disc * shape * bool) Hashtbl.t = Hashtbl.create 64 in
  let cls (l : Solver.literal) =
    let lk = Solver.lit_key l in
    match Hashtbl.find_opt cls_of lk with
    | Some c -> c
    | None ->
        let d, sh = classify ~model ~config l in
        let c = (lk, d, sh, l.Solver.positive) in
        Hashtbl.add cls_of lk c;
        c
  in
  let is_ordered = function
    | Scmp (op, _) -> not (op = Nfl.Ast.Eq || op = Nfl.Ast.Ne)
    | Smem | Sbool -> false
  in
  (* Value dispatch on ordered comparisons needs integer cuts; in
     range mode, literals against non-integer constants stay as leaf
     tests. Without ordered literals, a hash on the constants takes
     everything ([Value.equal] is total). *)
  let mode_and_included d lits =
    match d with
    | Kbool _ -> (`Bool, lits)
    | Kstate _ | Kexpr _ ->
        if List.exists (fun (_, sh, _) -> is_ordered sh) lits then
          ( `Range,
            List.filter
              (fun (_, sh, _) ->
                match sh with
                | Scmp (_, Value.Int _) | Smem -> true
                | _ -> false)
              lits )
        else (`Hash, lits)
  in
  let memo : ((int * int list) list, dnode) Hashtbl.t = Hashtbl.create 64 in
  let budget = ref 20_000 in
  let n_state = ref 0
  and n_hash = ref 0
  and n_range = ref 0
  and n_bool = ref 0
  and n_leaves = ref 0 in
  let mk_leaf cands =
    incr n_leaves;
    Leaf
      (Array.of_list
         (List.map (fun (p, consumed) -> centry_of ~consumed p) cands))
  in
  let rec build cands =
    let signature = List.map (fun (p, consumed) -> (p.p_eidx, consumed)) cands in
    match Hashtbl.find_opt memo signature with
    | Some n -> n
    | None ->
        let n = construct cands in
        Hashtbl.add memo signature n;
        n
  and construct cands =
    (* distinct discriminators over unconsumed literals, in
       first-encounter order, each with its distinct literals *)
    let discs = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (p, consumed) ->
        if not p.p_scan then
          List.iter
            (fun l ->
              let lk, d, sh, pos = cls l in
              if not (List.mem lk consumed) then
                let dk = disc_key d in
                match Hashtbl.find_opt discs dk with
                | None ->
                    Hashtbl.add discs dk (d, ref [ (lk, sh, pos) ]);
                    order := dk :: !order
                | Some (_, lits) ->
                    if not (List.exists (fun (lk', _, _) -> lk' = lk) !lits)
                    then lits := (lk, sh, pos) :: !lits)
            p.p_lits)
      cands;
    (* a candidate's included literals for one discriminator *)
    let cand_lits dk inc_keys (p, consumed) =
      if p.p_scan then []
      else
        List.fold_left
          (fun acc l ->
            let lk, d, sh, pos = cls l in
            if
              disc_key d = dk && List.mem lk inc_keys
              && (not (List.mem lk consumed))
              && not (List.exists (fun (lk', _, _) -> lk' = lk) acc)
            then (lk, sh, pos) :: acc
            else acc)
          [] p.p_lits
        |> List.rev
    in
    (* pick the discriminator constraining the most candidates *)
    let best =
      List.fold_left
        (fun best dk ->
          let d, lits = Hashtbl.find discs dk in
          let mode, included = mode_and_included d (List.rev !lits) in
          let inc_keys = List.map (fun (lk, _, _) -> lk) included in
          let score =
            List.length
              (List.filter (fun c -> cand_lits dk inc_keys c <> []) cands)
          in
          match best with
          | Some (_, _, _, _, s) when s >= score -> best
          | _ when score = 0 -> best
          | _ -> Some (dk, d, mode, inc_keys, score))
        None (List.rev !order)
    in
    match best with
    | None -> mk_leaf cands
    | Some _ when !budget <= 0 -> mk_leaf cands
    | Some (dk, d, mode, inc_keys, _) ->
        decr budget;
        let kids = ref [] in
        let nkids = ref 0 in
        let restrict vc =
          List.filter_map
            (fun ((p, consumed) as cand) ->
              match cand_lits dk inc_keys cand with
              | [] -> Some cand
              | lits ->
                  if
                    List.for_all
                      (fun (_, sh, pos) -> literal_verdict sh ~positive:pos vc)
                      lits
                  then
                    Some
                      ( p,
                        List.sort_uniq compare
                          (List.map (fun (lk, _, _) -> lk) lits @ consumed) )
                  else None)
            cands
        in
        let child vc =
          let node = build (restrict vc) in
          match List.find_opt (fun (_, n) -> n == node) !kids with
          | Some (i, _) -> i
          | None ->
              let i = !nkids in
              kids := (i, node) :: !kids;
              incr nkids;
              i
        in
        let consts_of () =
          List.fold_left
            (fun acc l ->
              match l with
              | _, Scmp (_, c), _ when not (List.exists (Value.equal c) acc) ->
                  c :: acc
              | _ -> acc)
            []
            (List.filter
               (fun (lk, _, _) -> List.mem lk inc_keys)
               (let _, lits = Hashtbl.find discs dk in
                List.rev !lits))
          |> List.rev
        in
        let finish_vdis () =
          match mode with
          | `Bool -> assert false
          | `Hash ->
              let consts = consts_of () in
              let table = Hashtbl.create (2 * List.length consts + 1) in
              List.iter
                (fun c ->
                  if not (Hashtbl.mem table c) then
                    Hashtbl.add table c (child (Cpoint c)))
                consts;
              VHash { table; other = child Cother }
          | `Range ->
              let cuts =
                List.filter_map
                  (function Value.Int n -> Some n | _ -> None)
                  (consts_of ())
                |> List.sort_uniq compare
                |> Array.of_list
              in
              let k = Array.length cuts in
              let classes = Array.make ((2 * k) + 1) 0 in
              for s = 0 to 2 * k do
                classes.(s) <-
                  (if s land 1 = 1 then child (Cpoint (Value.Int cuts.(s / 2)))
                   else
                     let i = s / 2 in
                     let lo = if i = 0 then None else Some cuts.(i - 1) in
                     let hi = if i = k then None else Some cuts.(i) in
                     child (Cgap (lo, hi)))
              done;
              VRange { cuts; classes; non_int = child Cnonint }
        in
        let mk_children () =
          Array.init !nkids (fun i ->
              snd (List.find (fun (j, _) -> j = i) !kids))
        in
        (match d with
        | Kbool e ->
            incr n_bool;
            let truthy = child Ctruthy in
            let falsy = child Cfalsy in
            let nonbool = child Cnonbool in
            let unres = child Cunres in
            Dbool
              {
                expr = cexpr e;
                src = e;
                truthy;
                falsy;
                nonbool;
                unres;
                children = mk_children ();
              }
        | Kstate (base, key) ->
            incr n_state;
            let vdis = finish_vdis () in
            let absent = child Cabsent in
            let unres = child Cunres in
            Dstate
              {
                base;
                key = cexpr key;
                key_src = key;
                vdis;
                absent;
                unres;
                children = mk_children ();
              }
        | Kexpr e ->
            (match mode with `Range -> incr n_range | _ -> incr n_hash);
            let vdis = finish_vdis () in
            let unres = child Cunres in
            Dexpr
              {
                expr = cexpr e;
                src = e;
                vdis;
                unres;
                children = mk_children ();
              })
  in
  let scanned = List.length (List.filter (fun p -> p.p_scan) pres) in
  let root = build (List.map (fun p -> (p, [])) pres) in
  let live_idx = Array.make (Nfactor.Model.entry_count model) false in
  List.iter (fun p -> live_idx.(p.p_eidx) <- true) pres;
  {
    model;
    lit_fns = Array.of_list (List.rev !fns_rev);
    root;
    live = List.length pres;
    live_idx;
    shared;
    indexed = (match root with Leaf _ -> 0 | _ -> List.length pres - scanned);
    scanned;
    dropped_static = Nfactor.Model.entry_count model - List.length pres;
    nodes =
      {
        n_state = !n_state;
        n_hash = !n_hash;
        n_range = !n_range;
        n_bool = !n_bool;
        n_leaves = !n_leaves;
      };
    max_uslots = !max_uslots;
  }

let pp_plan ppf t =
  Fmt.pf ppf
    "%s: %d/%d entries live (%d statically dropped), %d dispatched, %d scan-only; \
     nodes: %d state, %d hash, %d range, %d bool, %d leaves; %d literal slot(s)"
    t.model.Nfactor.Model.nf_name t.live
    (Nfactor.Model.entry_count t.model)
    t.dropped_static t.indexed t.scanned t.nodes.n_state t.nodes.n_hash
    t.nodes.n_range t.nodes.n_bool t.nodes.n_leaves
    (Array.length t.lit_fns)
