(** Model → dataplane compiler. See the interface for the strategy;
    the invariant throughout is exact agreement with
    {!Nfactor.Model_interp}: same values, same false-on-unresolved
    literal semantics, same evaluation order for effects that can
    raise. *)

open Symexec

type matcher = Flowstate.t -> Packet.Pkt.t -> bool
type valfn = Flowstate.t -> Packet.Pkt.t -> Value.t
type setter = Packet.Pkt.t -> Value.t -> Packet.Pkt.t

type cupdate =
  | CSet of string * valfn
  | CDict of string * (valfn * valfn option) list

type centry = {
  eidx : int;
  slots : int array;
  emit : (setter * valfn) list array;
  updates : cupdate list;
}

type segment =
  | Scan of centry array
  | Index of { keys : valfn array; table : (Value.t list, centry array) Hashtbl.t }

type t = {
  model : Nfactor.Model.t;
  lit_fns : matcher array;
  segments : segment array;
  live : int;
  indexed : int;
  dropped_static : int;
}

let unresolved name = raise (Nfactor.Model_interp.Unresolved name)

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

(* Packet field reads bind the record accessor at compile time instead
   of re-dispatching on the field name per packet. *)
let field_reader name f : valfn =
  match f with
  | "ip_src" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ip_src
  | "ip_dst" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ip_dst
  | "ip_proto" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ip_proto
  | "ip_ttl" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ip_ttl
  | "ip_len" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ip_len
  | "sport" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.sport
  | "dport" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.dport
  | "tcp_flags" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.tcp_flags
  | "seq" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.seq
  | "ack" -> fun _ (p : Packet.Pkt.t) -> Value.Int p.Packet.Pkt.ack
  | "payload" -> fun _ (p : Packet.Pkt.t) -> Value.Str p.Packet.Pkt.payload
  | f when Packet.Headers.is_int_field f ->
      fun _ p -> Value.Int (Packet.Pkt.get_int p f)
  | f when Packet.Headers.is_str_field f ->
      fun _ p -> Value.Str (Packet.Pkt.get_str p f)
  | _ -> fun _ _ -> unresolved name

let rec compile_expr ~pkt_var (e : Sexpr.t) : valfn =
  let prefix = pkt_var ^ "." in
  let plen = String.length prefix in
  let c = compile_expr ~pkt_var in
  match Sexpr.view e with
  | Sexpr.Const v -> fun _ _ -> v
  | Sexpr.Sym s ->
      if String.length s > plen && String.sub s 0 plen = prefix then
        field_reader s (String.sub s plen (String.length s - plen))
      else fun st _ -> Flowstate.read st s
  | Sexpr.Bin (op, a, b) ->
      let fa = c a and fb = c b in
      fun st pkt -> Value.binop op (fa st pkt) (fb st pkt)
  | Sexpr.Not a ->
      let fa = c a in
      fun st pkt -> Value.unop Nfl.Ast.Not (fa st pkt)
  | Sexpr.Neg a ->
      let fa = c a in
      fun st pkt -> Value.unop Nfl.Ast.Neg (fa st pkt)
  | Sexpr.Tup es ->
      let fs = List.map c es in
      fun st pkt -> Value.Tuple (List.map (fun f -> f st pkt) fs)
  | Sexpr.Lst es ->
      let fs = List.map c es in
      fun st pkt -> Value.List (List.map (fun f -> f st pkt) fs)
  | Sexpr.Get (cont, i) ->
      let fc = c cont and fi = c i in
      fun st pkt -> Value.index (fc st pkt) (fi st pkt)
  | Sexpr.Ufun (f, args) ->
      let fs = List.map c args in
      fun st pkt -> Value.apply_pure f (List.map (fun g -> g st pkt) fs)
  | Sexpr.Mem (d, k) -> compile_dict_query ~pkt_var `Mem d k
  | Sexpr.Dget (d, k) -> compile_dict_query ~pkt_var `Get d k

(* Dictionary atoms, lookup-only. The reference evaluator materializes
   base + writes into a full dict and then queries it; at runtime the
   key is concrete, so the last chronological write for that key (or,
   failing that, the base table) decides. Evaluation order matches the
   reference exactly — base resolution, then every write (key and
   inserted value, chronologically), then the queried key — so
   anything that raises, raises on both sides. *)
and compile_dict_query ~pkt_var kind (d : Sexpr.dict_state) k : valfn =
  let c = compile_expr ~pkt_var in
  let base = d.Sexpr.base in
  let is_empty = base = Sexpr.empty_base in
  let writes_c =
    (* chronological order, as [dict_after_writes] applies them *)
    List.rev_map (fun (wk, u) -> (c wk, Option.map c u)) d.Sexpr.writes
  in
  let fk = c k in
  fun st pkt ->
    let h = if is_empty then None else Some (Flowstate.handle st base) in
    let ws =
      List.map (fun (kf, uf) -> (kf st pkt, Option.map (fun f -> f st pkt) uf)) writes_c
    in
    let key = fk st pkt in
    (* last chronological write for [key] wins, like the dict_set fold *)
    let decided =
      List.fold_left
        (fun acc (wk, u) -> if Value.equal wk key then Some u else acc)
        None ws
    in
    match (kind, decided) with
    | `Mem, Some (Some _) -> Value.Bool true
    | `Mem, Some None -> Value.Bool false
    | `Get, Some (Some v) -> v
    | `Get, Some None -> unresolved ("missing key in " ^ base)
    | `Mem, None -> (
        match h with
        | None -> Value.Bool false
        | Some h -> Value.Bool (Flowstate.handle_mem st h key))
    | `Get, None -> (
        match Option.bind h (fun h -> Flowstate.handle_find st h key) with
        | Some v -> v
        | None -> unresolved ("missing key in " ^ base))

let compile_literal ~pkt_var (l : Solver.literal) : matcher =
  let f = compile_expr ~pkt_var l.Solver.atom in
  let pos = l.Solver.positive in
  fun st pkt ->
    match f st pkt with
    | Value.Bool b -> b = pos
    | Value.Int n -> n <> 0 = pos
    | _ -> false
    | exception Value.Type_error _ -> false
    | exception Nfactor.Model_interp.Unresolved _ -> false

(* ------------------------------------------------------------------ *)
(* Static evaluation against the config store                          *)
(* ------------------------------------------------------------------ *)

(* An expression is static when every free symbol is a cfgVar with a
   value in the config store: cfgVars never change during a run, so
   its value can be baked at compile time. oisVars and packet fields
   are dynamic by definition. *)
let is_static ~(model : Nfactor.Model.t) ~config e =
  Sexpr.Sset.for_all
    (fun s ->
      List.mem s model.Nfactor.Model.cfg_vars
      && Nfactor.Model_interp.Smap.mem s config)
    (Sexpr.syms e)

let static_value ~(model : Nfactor.Model.t) ~config e =
  if not (is_static ~model ~config e) then None
  else
    match
      Nfactor.Model_interp.eval ~pkt_var:model.Nfactor.Model.pkt_var config
        Nfactor.Model_interp.null_pkt e
    with
    | v -> Some v
    | exception _ -> None

(* ------------------------------------------------------------------ *)
(* Actions and updates                                                 *)
(* ------------------------------------------------------------------ *)

let field_setter f : setter =
  if Packet.Headers.is_int_field f then fun p v -> Packet.Pkt.set_int p f (Value.as_int v)
  else
    fun p v ->
     match v with
     | Value.Str s -> Packet.Pkt.set_str p f s
     | _ -> unresolved ("payload field " ^ f)

let compile_action ~pkt_var (a : Nfactor.Model.pkt_action) =
  match a with
  | Nfactor.Model.Drop -> [||]
  | Nfactor.Model.Forward snaps ->
      Array.of_list
        (List.map
           (List.map (fun (f, e) -> (field_setter f, compile_expr ~pkt_var e)))
           snaps)

let compile_update ~pkt_var (v, u) =
  match u with
  | Nfactor.Model.Set_scalar e -> CSet (v, compile_expr ~pkt_var e)
  | Nfactor.Model.Dict_ops ops ->
      CDict
        ( v,
          List.map
            (fun (k, op) -> (compile_expr ~pkt_var k, Option.map (compile_expr ~pkt_var) op))
            ops )

(* ------------------------------------------------------------------ *)
(* Compilation proper                                                  *)
(* ------------------------------------------------------------------ *)

(* A match literal is an index candidate when it is an equality between
   a dynamic expression and a static one: positive [a == b] or negated
   [¬(a != b)]. The dynamic side becomes the tested key expression and
   the static side its required value. *)
let equality_key ~model ~config (l : Solver.literal) =
  let eligible =
    match (Sexpr.view l.Solver.atom, l.Solver.positive) with
    | Sexpr.Bin (Nfl.Ast.Eq, a, b), true | Sexpr.Bin (Nfl.Ast.Ne, a, b), false ->
        Some (a, b)
    | _ -> None
  in
  match eligible with
  | None -> None
  | Some (a, b) -> (
      match (static_value ~model ~config a, static_value ~model ~config b) with
      | Some v, None -> Some (b, v)
      | None, Some v -> Some (a, v)
      | Some _, Some _ | None, None -> None)

(* Per-entry intermediate form before segmentation. *)
type pre = {
  p_eidx : int;
  p_lits : Solver.literal list;  (** dynamic-config ++ flow ++ state, match order *)
  p_keys : (Sexpr.t * Value.t * int) list;
      (** (tested expr, required value, lit_key) — nonempty = indexable *)
  p_entry : Nfactor.Model.entry;
}

let compile (model : Nfactor.Model.t) ~config =
  let pkt_var = model.Nfactor.Model.pkt_var in
  (* 1. Partial-evaluate config: decide each distinct static config
     literal once; statically-false entries disappear from the plan. *)
  let lit_verdict : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let static_holds (l : Solver.literal) =
    let key = Solver.lit_key l in
    match Hashtbl.find_opt lit_verdict key with
    | Some b -> b
    | None ->
        let b =
          Nfactor.Model_interp.literal_holds ~pkt_var config Nfactor.Model_interp.null_pkt l
        in
        Hashtbl.add lit_verdict key b;
        b
  in
  let pres =
    List.mapi
      (fun i (e : Nfactor.Model.entry) ->
        let static_cfg, dyn_cfg =
          List.partition
            (fun (l : Solver.literal) -> is_static ~model ~config l.Solver.atom)
            e.Nfactor.Model.config
        in
        if not (List.for_all static_holds static_cfg) then None
        else
          let match_lits = e.Nfactor.Model.flow_match @ e.Nfactor.Model.state_match in
          (* residual_match is informational for matching (the reference
             interpreter ignores it), but its presence marks the entry
             as not fully classified — too risky to index, scan it. *)
          let keys =
            if e.Nfactor.Model.residual_match <> [] then []
            else
              List.fold_left
                (fun acc (l : Solver.literal) ->
                  match equality_key ~model ~config l with
                  | Some (expr, v)
                    when not (List.exists (fun (e', _, _) -> Sexpr.equal e' expr) acc) ->
                      (expr, v, Solver.lit_key l) :: acc
                  | _ -> acc)
                [] match_lits
              |> List.rev
          in
          Some { p_eidx = i; p_lits = dyn_cfg @ match_lits; p_keys = keys; p_entry = e })
      model.Nfactor.Model.entries
    |> List.filter_map Fun.id
  in
  (* 2. Literal slots: one compiled closure per distinct literal. *)
  let slot_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let fns_rev = ref [] in
  let nslots = ref 0 in
  let slot (l : Solver.literal) =
    let key = Solver.lit_key l in
    match Hashtbl.find_opt slot_of key with
    | Some s -> s
    | None ->
        let s = !nslots in
        incr nslots;
        Hashtbl.add slot_of key s;
        fns_rev := compile_literal ~pkt_var l :: !fns_rev;
        s
  in
  let centry_of ?(consumed = []) (p : pre) =
    let slots =
      List.filter_map
        (fun (l : Solver.literal) ->
          if List.mem (Solver.lit_key l) consumed then None else Some (slot l))
        p.p_lits
    in
    (* a literal tested twice in one entry yields the same verdict;
       keep the first occurrence only *)
    let seen = Hashtbl.create 8 in
    let slots =
      List.filter
        (fun s ->
          if Hashtbl.mem seen s then false
          else begin
            Hashtbl.add seen s ();
            true
          end)
        slots
    in
    {
      eidx = p.p_eidx;
      slots = Array.of_list slots;
      emit = compile_action ~pkt_var p.p_entry.Nfactor.Model.pkt_action;
      updates = List.map (compile_update ~pkt_var) p.p_entry.Nfactor.Model.state_update;
    }
  in
  (* 3. Greedy segmentation: consecutive indexable entries sharing at
     least one tested expression form an index group (keyed on the
     intersection); everything else accumulates into ordered scans.
     Walking segments in order preserves first-match-wins. *)
  let inter_keys group_keys entry_keys =
    List.filter (fun e -> List.exists (fun (e', _, _) -> Sexpr.equal e e') entry_keys) group_keys
  in
  let indexed = ref 0 in
  let segments = ref [] in
  let flush_scan acc = if acc <> [] then segments := Scan (Array.of_list (List.rev acc)) :: !segments in
  let flush_group keys members =
    match members with
    | [] -> ()
    | [ only ] -> segments := Scan [| centry_of only |] :: !segments
    | _ ->
        let members = List.rev members in
        let keys = List.sort (fun a b -> Sexpr.compare a b) keys in
        let table = Hashtbl.create (2 * List.length members) in
        List.iter
          (fun (p : pre) ->
            let kv =
              List.map
                (fun ke ->
                  let _, v, _ =
                    List.find (fun (e', _, _) -> Sexpr.equal e' ke) p.p_keys
                  in
                  v)
                keys
            in
            let consumed =
              List.filter_map
                (fun (e', _, lk) ->
                  if List.exists (Sexpr.equal e') keys then Some lk else None)
                p.p_keys
            in
            let ce = centry_of ~consumed p in
            let cur = try Hashtbl.find table kv with Not_found -> [] in
            Hashtbl.replace table kv (cur @ [ ce ]))
          members;
        let table' = Hashtbl.create (Hashtbl.length table) in
        Hashtbl.iter (fun k ces -> Hashtbl.replace table' k (Array.of_list ces)) table;
        indexed := !indexed + List.length members;
        segments :=
          Index { keys = Array.of_list (List.map (compile_expr ~pkt_var) keys); table = table' }
          :: !segments
  in
  let rec build scan_acc group pres =
    match pres with
    | [] -> (
        match group with
        | Some (keys, members) -> flush_group keys members
        | None -> flush_scan scan_acc)
    | p :: rest -> (
        let indexable = p.p_keys <> [] in
        match group with
        | Some (keys, members) when indexable -> (
            match inter_keys keys p.p_keys with
            | [] ->
                flush_group keys members;
                build [] (Some (List.map (fun (e, _, _) -> e) p.p_keys, [ p ])) rest
            | keys' -> build [] (Some (keys', p :: members)) rest)
        | Some (keys, members) ->
            flush_group keys members;
            build [ centry_of p ] None rest
        | None when indexable ->
            flush_scan scan_acc;
            build [] (Some (List.map (fun (e, _, _) -> e) p.p_keys, [ p ])) rest
        | None -> build (centry_of p :: scan_acc) None rest)
  in
  build [] None pres;
  {
    model;
    lit_fns = Array.of_list (List.rev !fns_rev);
    segments = Array.of_list (List.rev !segments);
    live = List.length pres;
    indexed = !indexed;
    dropped_static = Nfactor.Model.entry_count model - List.length pres;
  }

let pp_plan ppf t =
  let scans, indexes =
    Array.fold_left
      (fun (s, i) -> function Scan _ -> (s + 1, i) | Index _ -> (s, i + 1))
      (0, 0) t.segments
  in
  Fmt.pf ppf
    "%s: %d/%d entries live (%d statically dropped), %d indexed, %d segment(s) (%d index, %d scan), %d literal slot(s)"
    t.model.Nfactor.Model.nf_name t.live
    (Nfactor.Model.entry_count t.model)
    t.dropped_static t.indexed
    (Array.length t.segments)
    indexes scans (Array.length t.lit_fns)
