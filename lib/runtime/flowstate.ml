(** Managed mutable state store: scalar cells + hash-backed per-flow
    tables with a capacity bound and clock-driven LRU eviction.

    Stores chain through an optional [fallback]: a name missing from
    this store's cells resolves in the fallback (recursively). The
    sharded dataplane builds a per-shard store of flow tables over one
    shared store of scalars and cross-flow tables; a plain engine
    store has no fallback and behaves exactly as before. *)

open Symexec

type slot = { mutable v : Value.t; mutable last_used : int }

(* Each table carries a one-entry probe memo: within one packet the
   same flow key is typically probed several times (state dispatch,
   match literals, emit reads, update keys), and a memo hit costs one
   structural key comparison instead of a hash traversal plus bucket
   walk. The memo holds the slot record itself, so in-place value
   updates stay coherent; only structural changes (insert, remove,
   evict, whole-table rebuild) invalidate it. *)
type table = {
  slots : (Value.t, slot) Hashtbl.t;
  mutable m_valid : bool;
  mutable m_key : Value.t;
  mutable m_slot : slot option;  (* [None] = key probed absent *)
}

type cell = Scalar of Value.t | Table of table

type t = {
  cells : (string, cell) Hashtbl.t;
  cap : int option;
  mutable clock : int;
  mutable evictions : int;
  fallback : t option;
  (* [frozen] marks a store as shared read-only for the duration of a
     parallel phase: probes of a frozen store skip the table memo and
     the recency stamp (both are mutations), so concurrent readers
     from several domains are race-free. *)
  mutable frozen : bool;
  (* [pinned] marks a store whose contents never change at run time
     (the config partition): reads skip the memo and recency stamp
     exactly like [frozen] — so concurrent domain reads are race-free —
     but are NOT charged to [frozen_hits], because a never-written
     store cannot make a verdict stale. *)
  mutable pinned : bool;
  (* Reads by THIS store that resolved in a frozen ancestor. The
     sharded engine snapshots this around each packet: a delta means
     the packet's walk consulted shared mutable state, so its verdict
     may be stale and the packet must be re-run serially. The counter
     lives on the entry store (one per domain), never on the shared
     ancestor, so no two domains ever write it. *)
  mutable frozen_hits : int;
}

(* The store a read through [t] actually resolved in. *)
type resolution = { owner : t; rcell : cell }

let unresolved name = raise (Nfactor.Model_interp.Unresolved name)

let mk_table slots =
  { slots; m_valid = false; m_key = Value.Bool false; m_slot = None }

(* [clock] is the recency stamp for every loaded slot: a table built
   mid-run (whole-dict overwrite) must stamp with the current clock or
   its fresh keys become the first LRU eviction victims. [size]
   pre-sizes the bucket array — load-time tables get a large one so
   steady-state inserts don't pay repeated rehash-everything growth. *)
let table_of_kvs ~clock ?(size = 16) kvs =
  let h = Hashtbl.create (max size (2 * List.length kvs)) in
  List.iter (fun (k, v) -> Hashtbl.replace h k { v; last_used = clock }) kvs;
  mk_table h

let cell_of_value ~clock ?size v =
  match v with
  | Value.Dict kvs -> Table (table_of_kvs ~clock ?size kvs)
  | v -> Scalar v

let create ?capacity ?fallback (store : Nfactor.Model_interp.store) =
  let cells = Hashtbl.create 16 in
  Nfactor.Model_interp.Smap.iter
    (fun name v -> Hashtbl.replace cells name (cell_of_value ~clock:0 ~size:4096 v))
    store;
  {
    cells;
    cap = capacity;
    clock = 0;
    evictions = 0;
    fallback;
    frozen = false;
    pinned = false;
    frozen_hits = 0;
  }

let capacity t = t.cap
let clock t = t.clock
let bump_clock t = t.clock <- t.clock + 1
let evictions t = t.evictions

let define t name v =
  Hashtbl.replace t.cells name (cell_of_value ~clock:t.clock ~size:4096 v)

let freeze t = t.frozen <- true
let thaw t = t.frozen <- false
let pin t = t.pinned <- true
let frozen_hits t = t.frozen_hits

(* Read-only probes (no memo refresh, no stamp): shared for the phase
   ([frozen]) or immutable for the run ([pinned]). *)
let ro t = t.frozen || t.pinned

(* ------------------------------------------------------------------ *)
(* Resolution through the fallback chain                               *)
(* ------------------------------------------------------------------ *)

(* Resolve [name] starting at [t]; charge [t.frozen_hits] when the
   owning store is frozen (the caller's verdict depends on shared
   mutable state). A miss is charged too when any store on the chain
   is frozen: a serial writer can define a new name mid-batch, so
   "absent" is itself a verdict about shared mutable state. The chain
   is at most three deep in practice. *)
let find_res t name =
  let rec go frozen_seen s =
    match Hashtbl.find_opt s.cells name with
    | Some c ->
        if s.frozen then t.frozen_hits <- t.frozen_hits + 1;
        Some { owner = s; rcell = c }
    | None -> (
        match s.fallback with
        | Some f -> go (frozen_seen || s.frozen) f
        | None ->
            if frozen_seen || s.frozen then
              t.frozen_hits <- t.frozen_hits + 1;
            None)
  in
  go false t

let rec root t = match t.fallback with Some f -> root f | None -> t

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

(* [frozen] probes must not mutate: no memo refresh, no stamp. *)
let probe ~frozen h k =
  if frozen then Hashtbl.find_opt h.slots k
  else if h.m_valid && Value.equal h.m_key k then h.m_slot
  else begin
    let r = Hashtbl.find_opt h.slots k in
    h.m_valid <- true;
    h.m_key <- k;
    h.m_slot <- r;
    r
  end

let materialize h =
  Value.Dict
    (Hashtbl.fold (fun k s acc -> (k, s.v) :: acc) h.slots []
    |> List.sort (fun (a, _) (b, _) -> Value.compare a b))

let read t name =
  match find_res t name with
  | Some { rcell = Scalar v; _ } -> v
  | Some { rcell = Table h; _ } -> materialize h
  | None -> unresolved name

(* A handle remembers the owning store: capacity, eviction accounting
   and the frozen flag are the owner's, while recency stamps use the
   querying store's clock (the one the engine advances per packet). *)
type handle = { hs : t; ht : table }

let handle t name =
  match find_res t name with
  | Some { owner; rcell = Table h } -> { hs = owner; ht = h }
  | Some { rcell = Scalar _; _ } | None -> unresolved ("dict " ^ name)

let handle_mem t h k =
  let frozen = ro h.hs in
  match probe ~frozen h.ht k with
  | Some s ->
      if not frozen then s.last_used <- t.clock;
      true
  | None -> false

let handle_find t h k =
  let frozen = ro h.hs in
  match probe ~frozen h.ht k with
  | Some s ->
      if not frozen then s.last_used <- t.clock;
      Some s.v
  | None -> None

(* Allocation-free variant for the compiled dataplane's hot path: the
   [option] box of {!handle_find} costs a minor-heap block per dict
   read. [Not_found] is a constant exception, so raising it is free. *)
let handle_get t h k =
  let frozen = ro h.hs in
  match probe ~frozen h.ht k with
  | Some s ->
      if not frozen then s.last_used <- t.clock;
      s.v
  | None -> raise Stdlib.Not_found

(* Narrow single-probe read for the engine's state-dispatch level:
   never raises, distinguishes "no such table" from "key absent", and
   stamps recency on a hit like any other read. This is the only state
   access the FSM dispatch needs — match structure stays decoupled
   from the store representation. *)
let state_read t name k =
  match find_res t name with
  | Some { owner; rcell = Table h } -> (
      let frozen = ro owner in
      match probe ~frozen h k with
      | Some s ->
          if not frozen then s.last_used <- t.clock;
          `Value s.v
      | None -> `Absent)
  | Some { rcell = Scalar _; _ } | None -> `No_table

let table_mem t name k = handle_mem t (handle t name) k
let table_find t name k = handle_find t (handle t name) k
let table_size t name = Hashtbl.length (handle t name).ht.slots

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

(* Writes route to the store that owns the name; a name owned by no
   store in the chain is created at the root (the shared store, when
   one exists), so a value defined by one shard stays visible to
   all. Plain stores have a one-element chain — unchanged behavior. *)
let set_scalar t name v =
  let target =
    match find_res t name with Some { owner; _ } -> owner | None -> root t
  in
  Hashtbl.replace target.cells name (cell_of_value ~clock:t.clock v)

(* Least-recently-used key; ties (same clock tick) break on the
   smaller key so eviction order is independent of hash layout. *)
let evict_lru owner h =
  let victim =
    Hashtbl.fold
      (fun k s acc ->
        match acc with
        | None -> Some (k, s.last_used)
        | Some (k', lu') ->
            if s.last_used < lu' || (s.last_used = lu' && Value.compare k k' < 0) then
              Some (k, s.last_used)
            else acc)
      h.slots None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove h.slots k;
      h.m_valid <- false;
      owner.evictions <- owner.evictions + 1
  | None -> ()

let table_set t name k v =
  let h = handle t name in
  match probe ~frozen:false h.ht k with
  | Some s ->
      s.v <- v;
      s.last_used <- t.clock
  | None ->
      (match h.hs.cap with
      | Some cap when Hashtbl.length h.ht.slots >= cap -> evict_lru h.hs h.ht
      | _ -> ());
      let s = { v; last_used = t.clock } in
      Hashtbl.replace h.ht.slots k s;
      (* the memo currently records [k] absent; point it at the new slot *)
      h.ht.m_key <- k;
      h.ht.m_slot <- Some s;
      h.ht.m_valid <- true

let table_remove t name k =
  let h = handle t name in
  Hashtbl.remove h.ht.slots k;
  h.ht.m_valid <- false

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

(* Own cells only — a partitioned store merges shard snapshots with
   the shared store's snapshot explicitly (the name sets are disjoint
   by construction, see {!Shard}). *)
let snapshot t =
  Hashtbl.fold
    (fun name cell acc ->
      let v = match cell with Scalar v -> v | Table h -> materialize h in
      Nfactor.Model_interp.Smap.add name v acc)
    t.cells Nfactor.Model_interp.Smap.empty
