(** Managed mutable state store: scalar cells + hash-backed per-flow
    tables with a capacity bound and clock-driven LRU eviction. *)

open Symexec

type slot = { mutable v : Value.t; mutable last_used : int }

(* Each table carries a one-entry probe memo: within one packet the
   same flow key is typically probed several times (state dispatch,
   match literals, emit reads, update keys), and a memo hit costs one
   structural key comparison instead of a hash traversal plus bucket
   walk. The memo holds the slot record itself, so in-place value
   updates stay coherent; only structural changes (insert, remove,
   evict, whole-table rebuild) invalidate it. *)
type table = {
  slots : (Value.t, slot) Hashtbl.t;
  mutable m_valid : bool;
  mutable m_key : Value.t;
  mutable m_slot : slot option;  (* [None] = key probed absent *)
}

type cell = Scalar of Value.t | Table of table

type t = {
  cells : (string, cell) Hashtbl.t;
  cap : int option;
  mutable clock : int;
  mutable evictions : int;
}

let unresolved name = raise (Nfactor.Model_interp.Unresolved name)

let mk_table slots =
  { slots; m_valid = false; m_key = Value.Bool false; m_slot = None }

(* [clock] is the recency stamp for every loaded slot: a table built
   mid-run (whole-dict overwrite) must stamp with the current clock or
   its fresh keys become the first LRU eviction victims. [size]
   pre-sizes the bucket array — load-time tables get a large one so
   steady-state inserts don't pay repeated rehash-everything growth. *)
let table_of_kvs ~clock ?(size = 16) kvs =
  let h = Hashtbl.create (max size (2 * List.length kvs)) in
  List.iter (fun (k, v) -> Hashtbl.replace h k { v; last_used = clock }) kvs;
  mk_table h

let create ?capacity (store : Nfactor.Model_interp.store) =
  let cells = Hashtbl.create 16 in
  Nfactor.Model_interp.Smap.iter
    (fun name v ->
      Hashtbl.replace cells name
        (match v with
        | Value.Dict kvs -> Table (table_of_kvs ~clock:0 ~size:4096 kvs)
        | v -> Scalar v))
    store;
  { cells; cap = capacity; clock = 0; evictions = 0 }

let capacity t = t.cap
let clock t = t.clock
let bump_clock t = t.clock <- t.clock + 1
let evictions t = t.evictions

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let probe h k =
  if h.m_valid && Value.equal h.m_key k then h.m_slot
  else begin
    let r = Hashtbl.find_opt h.slots k in
    h.m_valid <- true;
    h.m_key <- k;
    h.m_slot <- r;
    r
  end

let materialize h =
  Value.Dict
    (Hashtbl.fold (fun k s acc -> (k, s.v) :: acc) h.slots []
    |> List.sort (fun (a, _) (b, _) -> Value.compare a b))

let read t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Scalar v) -> v
  | Some (Table h) -> materialize h
  | None -> unresolved name

type handle = table

let handle t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Table h) -> h
  | Some (Scalar _) | None -> unresolved ("dict " ^ name)

let handle_mem t h k =
  match probe h k with
  | Some s ->
      s.last_used <- t.clock;
      true
  | None -> false

let handle_find t h k =
  match probe h k with
  | Some s ->
      s.last_used <- t.clock;
      Some s.v
  | None -> None

(* Allocation-free variant for the compiled dataplane's hot path: the
   [option] box of {!handle_find} costs a minor-heap block per dict
   read. [Not_found] is a constant exception, so raising it is free. *)
let handle_get t h k =
  match probe h k with
  | Some s ->
      s.last_used <- t.clock;
      s.v
  | None -> raise Stdlib.Not_found

(* Narrow single-probe read for the engine's state-dispatch level:
   never raises, distinguishes "no such table" from "key absent", and
   stamps recency on a hit like any other read. This is the only state
   access the FSM dispatch needs — match structure stays decoupled
   from the store representation. *)
let state_read t name k =
  match Hashtbl.find_opt t.cells name with
  | Some (Table h) -> (
      match probe h k with
      | Some s ->
          s.last_used <- t.clock;
          `Value s.v
      | None -> `Absent)
  | Some (Scalar _) | None -> `No_table

let table_mem t name k = handle_mem t (handle t name) k
let table_find t name k = handle_find t (handle t name) k
let table_size t name = Hashtbl.length (handle t name).slots

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

let set_scalar t name v =
  Hashtbl.replace t.cells name
    (match v with
    | Value.Dict kvs -> Table (table_of_kvs ~clock:t.clock kvs)
    | v -> Scalar v)

(* Least-recently-used key; ties (same clock tick) break on the
   smaller key so eviction order is independent of hash layout. *)
let evict_lru t h =
  let victim =
    Hashtbl.fold
      (fun k s acc ->
        match acc with
        | None -> Some (k, s.last_used)
        | Some (k', lu') ->
            if s.last_used < lu' || (s.last_used = lu' && Value.compare k k' < 0) then
              Some (k, s.last_used)
            else acc)
      h.slots None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove h.slots k;
      h.m_valid <- false;
      t.evictions <- t.evictions + 1
  | None -> ()

let table_set t name k v =
  let h = handle t name in
  match probe h k with
  | Some s ->
      s.v <- v;
      s.last_used <- t.clock
  | None ->
      (match t.cap with
      | Some cap when Hashtbl.length h.slots >= cap -> evict_lru t h
      | _ -> ());
      let s = { v; last_used = t.clock } in
      Hashtbl.replace h.slots k s;
      (* the memo currently records [k] absent; point it at the new slot *)
      h.m_key <- k;
      h.m_slot <- Some s;
      h.m_valid <- true

let table_remove t name k =
  let h = handle t name in
  Hashtbl.remove h.slots k;
  h.m_valid <- false

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot t =
  Hashtbl.fold
    (fun name cell acc ->
      let v = match cell with Scalar v -> v | Table h -> materialize h in
      Nfactor.Model_interp.Smap.add name v acc)
    t.cells Nfactor.Model_interp.Smap.empty
