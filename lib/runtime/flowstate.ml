(** Managed mutable state store: scalar cells + hash-backed per-flow
    tables with a capacity bound and clock-driven LRU eviction. *)

open Symexec

type slot = { mutable v : Value.t; mutable last_used : int }

type cell = Scalar of Value.t | Table of (Value.t, slot) Hashtbl.t

type t = {
  cells : (string, cell) Hashtbl.t;
  cap : int option;
  mutable clock : int;
  mutable evictions : int;
}

let unresolved name = raise (Nfactor.Model_interp.Unresolved name)

let table_of_kvs kvs =
  let h = Hashtbl.create (max 16 (2 * List.length kvs)) in
  List.iter (fun (k, v) -> Hashtbl.replace h k { v; last_used = 0 }) kvs;
  h

let create ?capacity (store : Nfactor.Model_interp.store) =
  let cells = Hashtbl.create 16 in
  Nfactor.Model_interp.Smap.iter
    (fun name v ->
      Hashtbl.replace cells name
        (match v with Value.Dict kvs -> Table (table_of_kvs kvs) | v -> Scalar v))
    store;
  { cells; cap = capacity; clock = 0; evictions = 0 }

let capacity t = t.cap
let clock t = t.clock
let bump_clock t = t.clock <- t.clock + 1
let evictions t = t.evictions

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let materialize h =
  Value.Dict
    (Hashtbl.fold (fun k s acc -> (k, s.v) :: acc) h []
    |> List.sort (fun (a, _) (b, _) -> Value.compare a b))

let read t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Scalar v) -> v
  | Some (Table h) -> materialize h
  | None -> unresolved name

type handle = (Value.t, slot) Hashtbl.t

let handle t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Table h) -> h
  | Some (Scalar _) | None -> unresolved ("dict " ^ name)

let handle_mem t h k =
  match Hashtbl.find_opt h k with
  | Some s ->
      s.last_used <- t.clock;
      true
  | None -> false

let handle_find t h k =
  match Hashtbl.find_opt h k with
  | Some s ->
      s.last_used <- t.clock;
      Some s.v
  | None -> None

let table_mem t name k = handle_mem t (handle t name) k
let table_find t name k = handle_find t (handle t name) k
let table_size t name = Hashtbl.length (handle t name)

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

let set_scalar t name v =
  Hashtbl.replace t.cells name
    (match v with Value.Dict kvs -> Table (table_of_kvs kvs) | v -> Scalar v)

(* Least-recently-used key; ties (same clock tick) break on the
   smaller key so eviction order is independent of hash layout. *)
let evict_lru t h =
  let victim =
    Hashtbl.fold
      (fun k s acc ->
        match acc with
        | None -> Some (k, s.last_used)
        | Some (k', lu') ->
            if s.last_used < lu' || (s.last_used = lu' && Value.compare k k' < 0) then
              Some (k, s.last_used)
            else acc)
      h None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove h k;
      t.evictions <- t.evictions + 1
  | None -> ()

let table_set t name k v =
  let h = handle t name in
  match Hashtbl.find_opt h k with
  | Some s ->
      s.v <- v;
      s.last_used <- t.clock
  | None ->
      (match t.cap with
      | Some cap when Hashtbl.length h >= cap -> evict_lru t h
      | _ -> ());
      Hashtbl.replace h k { v; last_used = t.clock }

let table_remove t name k = Hashtbl.remove (handle t name) k

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot t =
  Hashtbl.fold
    (fun name cell acc ->
      let v = match cell with Scalar v -> v | Table h -> materialize h in
      Nfactor.Model_interp.Smap.add name v acc)
    t.cells Nfactor.Model_interp.Smap.empty
