open Symexec

let x = Sexpr.sym "x"
let y = Sexpr.sym "y"
let bin = Sexpr.mk_bin
let lit e b = Solver.lit e b

let sat lits = Alcotest.(check bool) "sat" true (Solver.check lits = Solver.Sat)
let unsat lits = Alcotest.(check bool) "unsat" true (Solver.check lits = Solver.Unsat)

let test_trivial () =
  sat [];
  sat [ lit Sexpr.tru true ];
  unsat [ lit Sexpr.tru false ];
  unsat [ lit Sexpr.fls true ]

let test_eq_contradiction () =
  unsat [ lit (bin Nfl.Ast.Eq x (Sexpr.int 1)) true; lit (bin Nfl.Ast.Eq x (Sexpr.int 2)) true ];
  sat [ lit (bin Nfl.Ast.Eq x (Sexpr.int 1)) true; lit (bin Nfl.Ast.Eq y (Sexpr.int 2)) true ]

let test_eq_ne_same_value () =
  unsat [ lit (bin Nfl.Ast.Eq x (Sexpr.int 5)) true; lit (bin Nfl.Ast.Ne x (Sexpr.int 5)) true ];
  sat [ lit (bin Nfl.Ast.Eq x (Sexpr.int 5)) true; lit (bin Nfl.Ast.Ne x (Sexpr.int 6)) true ]

let test_interval_conflicts () =
  (* x < 5 && x > 10 *)
  unsat [ lit (bin Nfl.Ast.Lt x (Sexpr.int 5)) true; lit (bin Nfl.Ast.Gt x (Sexpr.int 10)) true ];
  (* x < 5 && x >= 5 *)
  unsat [ lit (bin Nfl.Ast.Lt x (Sexpr.int 5)) true; lit (bin Nfl.Ast.Ge x (Sexpr.int 5)) true ];
  (* x <= 5 && x >= 5 is exactly x = 5 *)
  sat [ lit (bin Nfl.Ast.Le x (Sexpr.int 5)) true; lit (bin Nfl.Ast.Ge x (Sexpr.int 5)) true ];
  (* ... and then x != 5 kills it *)
  unsat
    [
      lit (bin Nfl.Ast.Le x (Sexpr.int 5)) true;
      lit (bin Nfl.Ast.Ge x (Sexpr.int 5)) true;
      lit (bin Nfl.Ast.Ne x (Sexpr.int 5)) true;
    ]

let test_negated_literals () =
  (* ¬(x == 1) && x == 1 *)
  unsat [ lit (bin Nfl.Ast.Eq x (Sexpr.int 1)) false; lit (bin Nfl.Ast.Eq x (Sexpr.int 1)) true ];
  (* ¬(x < 5) means x >= 5; conflicts with x == 3 *)
  unsat [ lit (bin Nfl.Ast.Lt x (Sexpr.int 5)) false; lit (bin Nfl.Ast.Eq x (Sexpr.int 3)) true ]

let test_equality_propagation () =
  (* x == y && x == 1 && y == 2 *)
  unsat
    [
      lit (bin Nfl.Ast.Eq x y) true;
      lit (bin Nfl.Ast.Eq x (Sexpr.int 1)) true;
      lit (bin Nfl.Ast.Eq y (Sexpr.int 2)) true;
    ];
  sat
    [
      lit (bin Nfl.Ast.Eq x y) true;
      lit (bin Nfl.Ast.Eq x (Sexpr.int 1)) true;
      lit (bin Nfl.Ast.Eq y (Sexpr.int 1)) true;
    ]

let test_linear_arithmetic () =
  (* x + 1 == 5 && x == 4 : sat; && x == 3 : unsat *)
  let xp1 = bin Nfl.Ast.Add x (Sexpr.int 1) in
  sat [ lit (bin Nfl.Ast.Eq xp1 (Sexpr.int 5)) true; lit (bin Nfl.Ast.Eq x (Sexpr.int 4)) true ];
  unsat [ lit (bin Nfl.Ast.Eq xp1 (Sexpr.int 5)) true; lit (bin Nfl.Ast.Eq x (Sexpr.int 3)) true ]

let test_conjunction_decomposition () =
  let conj = bin Nfl.Ast.And (bin Nfl.Ast.Eq x (Sexpr.int 1)) (bin Nfl.Ast.Eq y (Sexpr.int 2)) in
  sat [ lit conj true ];
  unsat [ lit conj true; lit (bin Nfl.Ast.Ne x (Sexpr.int 1)) true ];
  (* ¬(a || b) decomposes to ¬a && ¬b *)
  let disj = bin Nfl.Ast.Or (bin Nfl.Ast.Eq x (Sexpr.int 1)) (bin Nfl.Ast.Eq x (Sexpr.int 2)) in
  unsat [ lit disj false; lit (bin Nfl.Ast.Eq x (Sexpr.int 1)) true ]

let test_membership_atoms () =
  let d = Sexpr.dict_base "tbl" in
  let m = Sexpr.mk_mem d (Sexpr.sym "k") in
  sat [ lit m true ];
  sat [ lit m false ];
  unsat [ lit m true; lit m false ];
  (* Different keys are independent atoms. *)
  sat [ lit m true; lit (Sexpr.mk_mem d (Sexpr.sym "k2")) false ]

let test_tuple_equality_decomposition () =
  let t1 = Sexpr.mk_tuple [ x; Sexpr.int 1 ] in
  let t2 = Sexpr.mk_tuple [ Sexpr.int 9; Sexpr.int 1 ] in
  (* (x, 1) == (9, 1) forces x == 9 *)
  unsat [ lit (bin Nfl.Ast.Eq t1 t2) true; lit (bin Nfl.Ast.Eq x (Sexpr.int 8)) true ];
  sat [ lit (bin Nfl.Ast.Eq t1 t2) true; lit (bin Nfl.Ast.Eq x (Sexpr.int 9)) true ]

let test_opaque_terms_conservative () =
  (* hash(x) == 1 && hash(x) == 2: same opaque term, conflicting. *)
  let h = Sexpr.mk_ufun "hash" [ x ] in
  unsat [ lit (bin Nfl.Ast.Eq h (Sexpr.int 1)) true; lit (bin Nfl.Ast.Eq h (Sexpr.int 2)) true ];
  (* Nonlinear x*y: conservative Sat. *)
  let xy = bin Nfl.Ast.Mul x y in
  sat [ lit (bin Nfl.Ast.Eq xy (Sexpr.int 7)) true; lit (bin Nfl.Ast.Eq xy (Sexpr.int 7)) true ]

let test_concretize () =
  let lits =
    [
      lit (bin Nfl.Ast.Eq x (Sexpr.int 80)) true;
      lit (bin Nfl.Ast.Ge y (Sexpr.int 1024)) true;
    ]
  in
  match Solver.concretize lits with
  | None -> Alcotest.fail "should concretize"
  | Some m ->
      Alcotest.(check bool) "x = 80" true
        (Value.equal (Solver.Smap.find "x" m) (Value.Int 80));
      (match Solver.Smap.find "y" m with
      | Value.Int v -> Alcotest.(check bool) "y >= 1024" true (v >= 1024)
      | _ -> Alcotest.fail "int expected")

let test_concretize_avoids_disequalities () =
  let lits =
    [
      lit (bin Nfl.Ast.Ge x (Sexpr.int 10)) true;
      lit (bin Nfl.Ast.Ne x (Sexpr.int 10)) true;
      lit (bin Nfl.Ast.Ne x (Sexpr.int 11)) true;
    ]
  in
  match Solver.concretize lits with
  | None -> Alcotest.fail "should concretize"
  | Some m -> (
      match Solver.Smap.find "x" m with
      | Value.Int v -> Alcotest.(check bool) "avoids 10, 11" true (v >= 12)
      | _ -> Alcotest.fail "int expected")

let test_concretize_unsat () =
  let lits =
    [ lit (bin Nfl.Ast.Eq x (Sexpr.int 1)) true; lit (bin Nfl.Ast.Eq x (Sexpr.int 2)) true ]
  in
  Alcotest.(check bool) "none" true (Solver.concretize lits = None)

let qcheck_point_constraints =
  (* Random point assignments are always satisfiable and concretize to
     the exact assignment. *)
  QCheck.Test.make ~name:"solver: point constraints concretize exactly" ~count:200
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (a, b) ->
      let lits =
        [ lit (bin Nfl.Ast.Eq x (Sexpr.int a)) true; lit (bin Nfl.Ast.Eq y (Sexpr.int b)) true ]
      in
      match Solver.concretize lits with
      | Some m ->
          Value.equal (Solver.Smap.find "x" m) (Value.Int a)
          && Value.equal (Solver.Smap.find "y" m) (Value.Int b)
      | None -> false)

let qcheck_interval_soundness =
  (* x in [lo, hi] is unsat iff lo > hi. *)
  QCheck.Test.make ~name:"solver: interval emptiness" ~count:300
    QCheck.(pair (int_range (-100) 100) (int_range (-100) 100))
    (fun (lo, hi) ->
      let lits =
        [ lit (bin Nfl.Ast.Ge x (Sexpr.int lo)) true; lit (bin Nfl.Ast.Le x (Sexpr.int hi)) true ]
      in
      let verdict = Solver.check lits in
      if lo > hi then verdict = Solver.Unsat else verdict = Solver.Sat)

let suite =
  [
    Alcotest.test_case "trivial" `Quick test_trivial;
    Alcotest.test_case "eq contradiction" `Quick test_eq_contradiction;
    Alcotest.test_case "eq/ne same value" `Quick test_eq_ne_same_value;
    Alcotest.test_case "interval conflicts" `Quick test_interval_conflicts;
    Alcotest.test_case "negated literals" `Quick test_negated_literals;
    Alcotest.test_case "equality propagation" `Quick test_equality_propagation;
    Alcotest.test_case "linear arithmetic" `Quick test_linear_arithmetic;
    Alcotest.test_case "conjunction decomposition" `Quick test_conjunction_decomposition;
    Alcotest.test_case "membership atoms" `Quick test_membership_atoms;
    Alcotest.test_case "tuple equality decomposition" `Quick test_tuple_equality_decomposition;
    Alcotest.test_case "opaque terms" `Quick test_opaque_terms_conservative;
    Alcotest.test_case "concretize" `Quick test_concretize;
    Alcotest.test_case "concretize avoids disequalities" `Quick test_concretize_avoids_disequalities;
    Alcotest.test_case "concretize unsat" `Quick test_concretize_unsat;
    QCheck_alcotest.to_alcotest qcheck_point_constraints;
    QCheck_alcotest.to_alcotest qcheck_interval_soundness;
  ]
