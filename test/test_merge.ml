(* Join-point path merging in the worklist explorer: diamond-chain
   detection on the CFG, linear state cost on 2^k synthetic chains,
   budget determinism under merging, byte-identity of models for NFs
   below the profitability threshold, and corpus-wide differential
   equality of merged vs unmerged models. *)

open Nfactor
open Symexec
module Smap = Explore.Smap

let parse_main src = (Nfl.Parser.program src).Nfl.Ast.main

let env_with bindings =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty bindings

let sym_pkt_env extra = env_with (("pkt", Explore.sym_pkt "pkt") :: extra)

(* k independent bit tests, each a one-sided diamond rejoining at the
   next test: 2^k feasible paths unmerged, O(k) states merged. *)
let chain_block k =
  let conds =
    String.concat " "
      (List.init k (fun i ->
           Printf.sprintf "if ((pkt.ip_len & %d) != 0) { x = x + %d; }" (1 lsl i) (1 lsl i)))
  in
  parse_main ("main { x = 0; " ^ conds ^ " send(pkt); }")

let merge_all =
  { Explore.mergeable_if = (fun _ -> true); Explore.admit_guard = (fun _ -> true) }

let rec if_sids (b : Nfl.Ast.block) =
  List.concat_map
    (fun (s : Nfl.Ast.stmt) ->
      match s.Nfl.Ast.kind with
      | Nfl.Ast.If (_, bt, bf) -> (s.Nfl.Ast.sid :: if_sids bt) @ if_sids bf
      | Nfl.Ast.While (_, body) | Nfl.Ast.For_in (_, _, body) -> if_sids body
      | _ -> [])
    b

(* ----------------------------------------------------------------- *)
(* Join-point and diamond-chain detection                             *)
(* ----------------------------------------------------------------- *)

let test_chain_detection () =
  let b = chain_block 5 in
  let joins = Joins.of_block b in
  let sids = if_sids b in
  Alcotest.(check int) "five diamonds" 5 (List.length sids);
  List.iter
    (fun sid ->
      Alcotest.(check bool) "mergeable" true (Joins.mergeable joins sid);
      Alcotest.(check bool) "not in loop" false (Joins.in_loop joins sid);
      Alcotest.(check int) "on the full chain" 5 (Joins.chain_len joins sid))
    sids

let test_elif_ladder_short_chains () =
  (* Nested branches share the trailing statement as their join: each
     sits on its own length-1 chain, matching the ladder's linear path
     count. *)
  let b =
    parse_main
      "main { x = 0; if (pkt.dport == 80) { x = 1; } else { if (pkt.dport == 81) { x = 2; } \
       else { x = 3; } } send(pkt); }"
  in
  let joins = Joins.of_block b in
  List.iter
    (fun sid ->
      Alcotest.(check bool) "ladder branch mergeable" true (Joins.mergeable joins sid);
      Alcotest.(check int) "ladder chain is short" 1 (Joins.chain_len joins sid))
    (if_sids b)

let test_loop_body_not_mergeable () =
  let b =
    parse_main
      "main { i = 0; while (i < 3) { if (pkt.dport == 80) { i = i + 2; } i = i + 1; } \
       send(pkt); }"
  in
  let joins = Joins.of_block b in
  List.iter
    (fun sid ->
      Alcotest.(check bool) "in loop" true (Joins.in_loop joins sid);
      Alcotest.(check bool) "not mergeable" false (Joins.mergeable joins sid);
      Alcotest.(check int) "no chain" 0 (Joins.chain_len joins sid))
    (if_sids b)

let test_exit_join_not_mergeable () =
  (* The branch is the last statement: its arms never rejoin inside the
     block, so there is no join point to merge at. *)
  let b = parse_main "main { if (pkt.dport == 80) { send(pkt); } else { drop(); } }" in
  let joins = Joins.of_block b in
  List.iter
    (fun sid ->
      Alcotest.(check bool) "no join point" false (Joins.mergeable joins sid);
      Alcotest.(check int) "no chain" 0 (Joins.chain_len joins sid))
    (if_sids b)

(* ----------------------------------------------------------------- *)
(* Linear cost on 2^k chains                                          *)
(* ----------------------------------------------------------------- *)

let test_merge_linear_on_exponential_chain () =
  (* Unmerged, 12 diamonds need 2^12 paths and overflow a budget of
     64; merged, every join folds the pair back into one state and the
     whole block is a single path. *)
  let b = chain_block 12 in
  let config = { Explore.default_config with Explore.max_paths = 64 } in
  let _, unmerged = Explore.block ~config ~env:(sym_pkt_env []) b in
  Alcotest.(check bool) "unmerged overflows" true unmerged.Explore.overflowed;
  let paths, merged = Explore.block ~config ~merge:merge_all ~env:(sym_pkt_env []) b in
  Alcotest.(check bool) "merged fits" false merged.Explore.overflowed;
  Alcotest.(check int) "single merged path" 1 (List.length paths);
  Alcotest.(check int) "merged state charged once" 1 merged.Explore.paths;
  Alcotest.(check int) "one merge per diamond" 12 merged.Explore.merges;
  Alcotest.(check int) "still one decision per diamond" 12 merged.Explore.forks;
  (* A complete join folds the tautological guard away: the merged
     path condition is empty and the store carries the ite summary. *)
  let p = List.hd paths in
  Alcotest.(check int) "empty path condition" 0 (List.length p.Explore.pc);
  match Smap.find "x" p.Explore.env with
  | Explore.Scalar e ->
      Alcotest.(check bool) "summary mentions the packet" true
        (Sexpr.Sset.mem "pkt.ip_len" (Sexpr.syms e))
  | _ -> Alcotest.fail "scalar summary expected"

let test_rejecting_policy_is_unmerged () =
  (* A policy whose guard filter rejects everything must behave exactly
     like the unmerged explorer: merge regions open but every join
     falls back to separate states. *)
  let b = chain_block 5 in
  let reject = { merge_all with Explore.admit_guard = (fun _ -> false) } in
  let paths_off, off = Explore.block ~env:(sym_pkt_env []) b in
  let paths_on, on = Explore.block ~merge:reject ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "same path count" (List.length paths_off) (List.length paths_on);
  Alcotest.(check int) "2^5 paths" 32 (List.length paths_on);
  Alcotest.(check int) "no merges" 0 on.Explore.merges;
  Alcotest.(check int) "same forks" off.Explore.forks on.Explore.forks;
  (* Same paths in the same order, literal for literal. *)
  List.iter2
    (fun (a : Explore.path) (b : Explore.path) ->
      Alcotest.(check int) "same pc depth" (List.length a.Explore.pc)
        (List.length b.Explore.pc);
      List.iter2
        (fun (la : Solver.literal) (lb : Solver.literal) ->
          Alcotest.(check bool) "same literal" true
            (Sexpr.equal la.Solver.atom lb.Solver.atom
            && la.Solver.positive = lb.Solver.positive))
        a.Explore.pc b.Explore.pc)
    paths_off paths_on

(* ----------------------------------------------------------------- *)
(* Budgets and determinism under merging                              *)
(* ----------------------------------------------------------------- *)

let run_twice ~config ?merge b =
  let r1 = Explore.block ~config ?merge ~env:(sym_pkt_env []) b in
  let r2 = Explore.block ~config ?merge ~env:(sym_pkt_env []) b in
  (r1, r2)

let check_same_outcome (paths1, (s1 : Explore.stats)) (paths2, (s2 : Explore.stats)) =
  Alcotest.(check int) "same paths" (List.length paths1) (List.length paths2);
  Alcotest.(check int) "same paths stat" s1.Explore.paths s2.Explore.paths;
  Alcotest.(check int) "same truncated" s1.Explore.truncated_paths s2.Explore.truncated_paths;
  Alcotest.(check bool) "same overflow" s1.Explore.overflowed s2.Explore.overflowed;
  Alcotest.(check int) "same merges" s1.Explore.merges s2.Explore.merges;
  Alcotest.(check int) "same prunes" s1.Explore.prunes s2.Explore.prunes;
  Alcotest.(check int) "same forks" s1.Explore.forks s2.Explore.forks;
  Alcotest.(check bool) "same fork histogram" true
    (Explore.Imap.equal ( = ) s1.Explore.fork_depths s2.Explore.fork_depths)

let test_overflow_deterministic_under_merging () =
  (* Overflow while merge regions are in flight: re-running must
     reproduce the same truncation point, histogram and counters. *)
  let b = chain_block 12 in
  let tight = { Explore.default_config with Explore.max_paths = 1 } in
  let r1, r2 = run_twice ~config:tight ~merge:merge_all b in
  check_same_outcome r1 r2;
  let _, s = r1 in
  Alcotest.(check bool) "overflowed" true s.Explore.overflowed;
  Alcotest.(check bool) "hard cap respected" true (s.Explore.paths <= 1)

let test_merged_run_deterministic () =
  let b = chain_block 10 in
  let config = { Explore.default_config with Explore.max_paths = 64 } in
  let r1, r2 = run_twice ~config ~merge:merge_all b in
  check_same_outcome r1 r2

let test_fork_histogram_flat_under_merging () =
  (* Complete joins return the pc to its pre-fork depth, so every
     diamond on the chain forks at depth 0. *)
  let b = chain_block 8 in
  let _, stats = Explore.block ~merge:merge_all ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "all forks at depth 0" 8
    (Option.value ~default:0 (Explore.Imap.find_opt 0 stats.Explore.fork_depths));
  Alcotest.(check int) "max depth 0" 0 stats.Explore.max_fork_depth

(* ----------------------------------------------------------------- *)
(* Corpus guarantees                                                  *)
(* ----------------------------------------------------------------- *)

let stress_names = [ Nfs.Dpi.name; Nfs.Rangefw.name ]

(* Unmerged DPI needs room for its 2^13 paths. *)
let unmerged_config name =
  if name = Nfs.Dpi.name then
    { Explore.default_config with Explore.max_paths = 20_000 }
  else Explore.default_config

let extract_pair =
  let tbl = Hashtbl.create 16 in
  fun (e : Nfs.Corpus.entry) ->
    match Hashtbl.find_opt tbl e.Nfs.Corpus.name with
    | Some pair -> pair
    | None ->
        let name = e.Nfs.Corpus.name in
        let on = Extract.run ~merge:true ~name (e.Nfs.Corpus.program ()) in
        let off =
          Extract.run ~config:(unmerged_config name) ~merge:false ~name
            (e.Nfs.Corpus.program ())
        in
        Hashtbl.replace tbl name (on, off);
        (on, off)

let test_legacy_models_byte_identical () =
  (* Below the profitability threshold the merge policy must not fire:
     the refactored explorer with merging on produces byte-for-byte the
     models of the unmerged enumeration. *)
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      let name = e.Nfs.Corpus.name in
      if not (List.mem name stress_names) then begin
        let on, off = extract_pair e in
        Alcotest.(check int) (name ^ ": no merges") 0 on.Extract.stats.Explore.merges;
        Alcotest.(check string)
          (name ^ ": model byte-identical")
          (Model_io.to_string off.Extract.model)
          (Model_io.to_string on.Extract.model)
      end)
    Nfs.Corpus.all

let test_dpi_exponential_vs_merged () =
  let e = Option.get (Nfs.Corpus.find Nfs.Dpi.name) in
  let on, off = extract_pair e in
  Alcotest.(check bool) "naive enumeration is exponential" true
    (off.Extract.stats.Explore.paths >= 4096);
  Alcotest.(check bool) "unmerged still complete under the raised budget" false
    off.Extract.stats.Explore.overflowed;
  let branches = on.Extract.stats.Explore.forks in
  Alcotest.(check bool) "merged paths within 4x branch count" true
    (on.Extract.stats.Explore.paths <= 4 * branches);
  Alcotest.(check bool) "merges recorded" true (on.Extract.stats.Explore.merges >= 10);
  (* The default budget cannot hold the naive enumeration: merging is
     what makes this NF synthesizable at all. *)
  let t =
    Extract.run ~merge:false ~name:Nfs.Dpi.name (e.Nfs.Corpus.program ())
  in
  Alcotest.(check bool) "unmerged overflows the default budget" true
    t.Extract.stats.Explore.overflowed

(* Seed-varied traffic for the property; the (large, fixed) palette is
   replayed once by the deterministic corpus test below rather than on
   every property trial. *)
let seeded_pkts seed =
  let ch = Packet.Traffic.churn_gen ~concurrent:24 ~seed () in
  Packet.Traffic.random_stream ~seed:(seed + 1) ~n:120 ()
  @ List.init 60 (fun _ -> Packet.Traffic.churn_next ch)

let diff_pkts seed = Verify.Testgen.base_palette @ seeded_pkts seed

let test_corpus_merged_differentially_equal () =
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      let name = e.Nfs.Corpus.name in
      let on, off = extract_pair e in
      let store = Model_interp.initial_store on in
      let v, stores_equal =
        Equiv.model_differential ~store ~pkts:(diff_pkts 42) off.Extract.model
          on.Extract.model
      in
      Alcotest.(check int) (name ^ ": no mismatches") 0 (List.length v.Equiv.mismatches);
      Alcotest.(check bool) (name ^ ": stores equal") true stores_equal)
    Nfs.Corpus.all

(* Property: on any packet sequence, the merged and unmerged models are
   observationally equivalent, per corpus member. *)
let prop_merged_model_equals_unmerged =
  QCheck.Test.make ~name:"property: merged model == unmerged model" ~count:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      List.for_all
        (fun (e : Nfs.Corpus.entry) ->
          let on, off = extract_pair e in
          let store = Model_interp.initial_store on in
          let v, stores_equal =
            Equiv.model_differential ~store ~pkts:(seeded_pkts seed) off.Extract.model
              on.Extract.model
          in
          v.Equiv.mismatches = [] && stores_equal)
        Nfs.Corpus.all)

let suite =
  [
    Alcotest.test_case "chain detection" `Quick test_chain_detection;
    Alcotest.test_case "elif ladder: short chains" `Quick test_elif_ladder_short_chains;
    Alcotest.test_case "loop body not mergeable" `Quick test_loop_body_not_mergeable;
    Alcotest.test_case "exit join not mergeable" `Quick test_exit_join_not_mergeable;
    Alcotest.test_case "2^12 chain merges linear" `Quick test_merge_linear_on_exponential_chain;
    Alcotest.test_case "rejecting policy == unmerged" `Quick test_rejecting_policy_is_unmerged;
    Alcotest.test_case "overflow deterministic under merging" `Quick
      test_overflow_deterministic_under_merging;
    Alcotest.test_case "merged run deterministic" `Quick test_merged_run_deterministic;
    Alcotest.test_case "fork histogram flat under merging" `Quick
      test_fork_histogram_flat_under_merging;
    Alcotest.test_case "legacy models byte-identical" `Quick test_legacy_models_byte_identical;
    Alcotest.test_case "dpi: exponential naive, linear merged" `Quick
      test_dpi_exponential_vs_merged;
    Alcotest.test_case "corpus: merged differentially equal" `Quick
      test_corpus_merged_differentially_equal;
    QCheck_alcotest.to_alcotest prop_merged_model_equals_unmerged;
  ]
