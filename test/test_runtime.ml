(* The compiled dataplane (lib/runtime) against the reference
   interpreter: same entry fires, same outputs, same final state, on
   every corpus NF — plus the engine-only behaviors (plan shape, miss
   counters, LRU-bounded stores, streaming replay). *)

open Symexec
open Nfactor_runtime

let extractions : (string, Nfactor.Extract.result) Hashtbl.t = Hashtbl.create 16

let extraction name =
  match Hashtbl.find_opt extractions name with
  | Some ex -> ex
  | None ->
      let e = Option.get (Nfs.Corpus.find name) in
      let ex = Nfactor.Extract.run ~name (e.Nfs.Corpus.program ()) in
      Hashtbl.add extractions name ex;
      ex

let stores_equal = Nfactor.Model_interp.Smap.equal Value.equal

let outputs_equal a b =
  List.length a = List.length b && List.for_all2 Packet.Pkt.equal a b

(* Engine vs interpreter, packet by packet: fired entry, emitted
   packets and the store after every step must agree. *)
let differential ?capacity name ~seed ~n () =
  let ex = extraction name in
  let model = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let plan = Compile.compile model ~config:store in
  let eng = Engine.create ?capacity plan ~store in
  let acts = Nfactor.Model_interp.actives model store in
  let pkts = Packet.Traffic.random_stream ~seed ~n () in
  let _ =
    List.fold_left
      (fun (st, i) pkt ->
        let r = Nfactor.Model_interp.step ~actives:acts model st pkt in
        let o = Engine.step eng pkt in
        Alcotest.(check (option int))
          (Printf.sprintf "%s: fired entry, packet %d" name i)
          r.Nfactor.Model_interp.matched o.Engine.fired;
        if not (outputs_equal r.Nfactor.Model_interp.outputs o.Engine.outputs) then
          Alcotest.failf "%s: outputs differ on packet %d" name i;
        (r.Nfactor.Model_interp.store, i + 1))
      (store, 0) pkts
  in
  ()

let final_state name ~seed ~n () =
  let ex = extraction name in
  let model = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let pkts = Packet.Traffic.random_stream ~seed ~n () in
  let ref_store, _ = Nfactor.Model_interp.run model ~store ~pkts in
  let eng = Engine.of_model model ~config:store ~store in
  let _ = Engine.run_batch eng (Array.of_list pkts) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: final store equal" name)
    true
    (stores_equal ref_store (Engine.snapshot eng))

(* Same traffic delivered through [replay]'s streaming generator and
   through a materialized [run_batch] must leave identical state and
   counters — the generator equivalence the bench relies on. *)
let test_replay_matches_batch () =
  List.iter
    (fun name ->
      let ex = extraction name in
      let model = ex.Nfactor.Extract.model in
      let store = Nfactor.Model_interp.initial_store ex in
      let plan = Compile.compile model ~config:store in
      let a = Engine.create plan ~store in
      let _ = Engine.replay a ~seed:7 ~n:500 in
      let b = Engine.create plan ~store in
      let _ =
        Engine.run_batch b (Array.of_list (Packet.Traffic.random_stream ~seed:7 ~n:500 ()))
      in
      Alcotest.(check bool)
        (name ^ ": replay state == batch state")
        true
        (stores_equal (Engine.snapshot a) (Engine.snapshot b));
      Alcotest.(check int) (name ^ ": packets") 500 a.Engine.stats.Engine.packets;
      Alcotest.(check (list int))
        (name ^ ": per-entry hits")
        (Array.to_list b.Engine.stats.Engine.entry_hits)
        (Array.to_list a.Engine.stats.Engine.entry_hits))
    [ "lb"; "snort"; "portknock" ]

(* Partial evaluation must only ever drop entries whose config is
   statically false; the plan totals have to account for every entry. *)
let test_plan_accounting () =
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      let name = e.Nfs.Corpus.name in
      let ex = extraction name in
      let model = ex.Nfactor.Extract.model in
      let store = Nfactor.Model_interp.initial_store ex in
      let plan = Compile.compile model ~config:store in
      Alcotest.(check int)
        (name ^ ": live + dropped = entries")
        (Nfactor.Model.entry_count model)
        (plan.Compile.live + plan.Compile.dropped_static);
      let actives = Nfactor.Model_interp.actives model store in
      Alcotest.(check int)
        (name ^ ": live = interpreter actives")
        (List.length actives) plan.Compile.live)
    Nfs.Corpus.all

(* snort's rule dispatch is pure equality tests over cfg-derived
   values: the compiler must index it (that's where the throughput
   comes from), and balance's flow tables likewise. *)
let test_index_used () =
  List.iter
    (fun name ->
      let ex = extraction name in
      let model = ex.Nfactor.Extract.model in
      let store = Nfactor.Model_interp.initial_store ex in
      let plan = Compile.compile model ~config:store in
      Alcotest.(check bool) (name ^ ": some entries indexed") true (plan.Compile.indexed > 0))
    [ "snort"; "balance"; "lb" ]

(* Miss-reason bookkeeping, both in the interpreter and the engine. *)
let test_miss_reasons () =
  let ex = extraction "lb" in
  let model = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let pkt = List.hd (Packet.Traffic.random_stream ~seed:1 ~n:1 ()) in
  (* no entries at all *)
  let empty = { model with Nfactor.Model.entries = [] } in
  let r = Nfactor.Model_interp.step empty store pkt in
  Alcotest.(check bool) "no entries -> No_entries" true
    (r.Nfactor.Model_interp.miss = Some Nfactor.Model_interp.No_entries);
  (* only the statically-dead entries: config can never hold *)
  let dead =
    List.filter
      (fun (e : Nfactor.Model.entry) ->
        not
          (List.exists
             (fun (a : Nfactor.Model_interp.active) ->
               a.Nfactor.Model_interp.a_entry == e)
             (Nfactor.Model_interp.actives model store)))
      model.Nfactor.Model.entries
  in
  Alcotest.(check bool) "lb has a statically-dead entry" true (dead <> []);
  let dead_model = { model with Nfactor.Model.entries = dead } in
  let r = Nfactor.Model_interp.step dead_model store pkt in
  Alcotest.(check bool) "dead config -> No_active_config" true
    (r.Nfactor.Model_interp.miss = Some Nfactor.Model_interp.No_active_config);
  let eng = Engine.of_model dead_model ~config:store ~store in
  let o = Engine.step eng pkt in
  Alcotest.(check (option int)) "engine drops" None o.Engine.fired;
  Alcotest.(check int) "engine counts miss_no_config" 1
    eng.Engine.stats.Engine.miss_no_config;
  (* a live entry that doesn't match this packet *)
  let live =
    List.filter (fun (e : Nfactor.Model.entry) -> not (List.memq e dead)) model.Nfactor.Model.entries
  in
  let one = { model with Nfactor.Model.entries = [ List.hd live ] } in
  let miss_pkt =
    (* dport 1 matches no lb virtual service *)
    Packet.Pkt.make ~ip_src:(Packet.Addr.ip 10 0 0 1) ~ip_dst:(Packet.Addr.ip 10 0 0 2)
      ~sport:1 ~dport:1 ()
  in
  let r = Nfactor.Model_interp.step one store miss_pkt in
  Alcotest.(check bool) "no match -> No_flow_state_match" true
    (r.Nfactor.Model_interp.miss = Some Nfactor.Model_interp.No_flow_state_match
    || r.Nfactor.Model_interp.matched <> None);
  (match r.Nfactor.Model_interp.miss with
  | Some Nfactor.Model_interp.No_flow_state_match ->
      let eng = Engine.of_model one ~config:store ~store in
      let o = Engine.step eng miss_pkt in
      Alcotest.(check (option int)) "engine drops too" None o.Engine.fired;
      Alcotest.(check int) "engine counts miss_no_match" 1
        eng.Engine.stats.Engine.miss_no_match
  | _ -> ())

(* compile_expr must be extensionally equal to Model_interp.eval —
   exercised on every literal of every corpus model under live stores
   and random packets. *)
let test_compile_expr_parity () =
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      let name = e.Nfs.Corpus.name in
      let ex = extraction name in
      let model = ex.Nfactor.Extract.model in
      let pkt_var = model.Nfactor.Model.pkt_var in
      let store = Nfactor.Model_interp.initial_store ex in
      let pkts = Packet.Traffic.random_stream ~seed:11 ~n:50 () in
      let atoms =
        List.concat_map
          (fun (en : Nfactor.Model.entry) ->
            List.map
              (fun (l : Solver.literal) -> l.Solver.atom)
              (en.Nfactor.Model.config @ en.Nfactor.Model.flow_match
             @ en.Nfactor.Model.state_match @ en.Nfactor.Model.residual_match))
          model.Nfactor.Model.entries
      in
      let fs = Flowstate.create store in
      List.iter
        (fun atom ->
          let compiled = Compile.compile_expr ~pkt_var atom in
          List.iter
            (fun pkt ->
              let reference =
                match Nfactor.Model_interp.eval ~pkt_var store pkt atom with
                | v -> Ok v
                | exception Nfactor.Model_interp.Unresolved _ -> Error "unresolved"
                | exception Value.Type_error _ -> Error "type"
              in
              let got =
                match compiled fs pkt with
                | v -> Ok v
                | exception Nfactor.Model_interp.Unresolved _ -> Error "unresolved"
                | exception Value.Type_error _ -> Error "type"
              in
              let same =
                match (reference, got) with
                | Ok a, Ok b -> Value.equal a b
                | Error a, Error b -> a = b
                | _ -> false
              in
              if not same then
                Alcotest.failf "%s: compile_expr diverges on %s" name (Sexpr.to_string atom))
            pkts)
        atoms)
    Nfs.Corpus.all

(* Randomized seeds: full-corpus engine == interpreter as a law. *)
let prop_engine_agrees =
  QCheck.Test.make ~name:"property: engine == interpreter on random seeds" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      List.for_all
        (fun name ->
          let ex = extraction name in
          let model = ex.Nfactor.Extract.model in
          let store = Nfactor.Model_interp.initial_store ex in
          let pkts = Packet.Traffic.random_stream ~seed ~n:120 () in
          let ref_store, ref_out = Nfactor.Model_interp.run model ~store ~pkts in
          let eng = Engine.of_model model ~config:store ~store in
          let outs = Engine.run_batch eng (Array.of_list pkts) in
          List.for_all2
            (fun r (o : Engine.outcome) -> outputs_equal r o.Engine.outputs)
            ref_out (Array.to_list outs)
          && stores_equal ref_store (Engine.snapshot eng))
        [ "lb"; "balance"; "snort"; "nat"; "portknock" ])

let corpus_cases =
  List.concat_map
    (fun (e : Nfs.Corpus.entry) ->
      let name = e.Nfs.Corpus.name in
      [
        Alcotest.test_case (name ^ " differential 1000") `Slow (differential name ~seed:2016 ~n:1000);
        Alcotest.test_case (name ^ " final state 1000") `Slow (final_state name ~seed:4242 ~n:1000);
      ])
    Nfs.Corpus.all

let suite =
  corpus_cases
  @ [
      Alcotest.test_case "replay == batch" `Quick test_replay_matches_batch;
      Alcotest.test_case "plan accounting" `Quick test_plan_accounting;
      Alcotest.test_case "index used on snort/balance/lb" `Quick test_index_used;
      Alcotest.test_case "miss reasons" `Quick test_miss_reasons;
      Alcotest.test_case "compile_expr == eval" `Quick test_compile_expr_parity;
      QCheck_alcotest.to_alcotest prop_engine_agrees;
    ]
