(* The chain invariant verifier (lib/verify/invariant): property
   parsing, proven/violated/unknown verdicts over corpus chains, and
   the contract that every Violated verdict carries a concrete
   counterexample that reproduces both through the reference
   interpreter chain and through the compiled chain runtime. *)

open Verify

let extractions : (string, Nfactor.Extract.result) Hashtbl.t = Hashtbl.create 16

let node name =
  let ex =
    match Hashtbl.find_opt extractions name with
    | Some ex -> ex
    | None ->
        let e = Option.get (Nfs.Corpus.find name) in
        let ex = Nfactor.Extract.run ~name (e.Nfs.Corpus.program ()) in
        Hashtbl.add extractions name ex;
        ex
  in
  (name, ex.Nfactor.Extract.model, Nfactor.Model_interp.initial_store ex)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let prop s =
  match Invariant.parse_prop s with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse_prop %S: %s" s e

let test_parse () =
  (match Invariant.parse_prop "dport=80 & ip_proto=6" with
  | Ok [ a; b ] ->
      Alcotest.(check string) "field a" "dport" a.Invariant.p_field;
      Alcotest.(check string) "field b" "ip_proto" b.Invariant.p_field
  | _ -> Alcotest.fail "conjunction parse");
  (match Invariant.parse_prop "ip_dst=10.0.0.1" with
  | Ok [ p ] ->
      Alcotest.(check bool) "dotted quad" true
        (p.Invariant.p_value = Symexec.Value.Int (Packet.Addr.of_string "10.0.0.1"))
  | _ -> Alcotest.fail "dotted quad parse");
  (match Invariant.parse_prop "ip_ttl<=0" with
  | Ok [ p ] -> Alcotest.(check bool) "le" true (p.Invariant.p_cmp = Invariant.Cle)
  | _ -> Alcotest.fail "le parse");
  (match Invariant.parse_prop "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown field must not parse");
  match Invariant.parse_prop "dport" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing operator must not parse"

let test_holds_on () =
  let p =
    Packet.Pkt.make ~ip_proto:6
      ~ip_src:(Packet.Addr.of_string "10.0.0.1")
      ~ip_dst:(Packet.Addr.of_string "1.1.1.1")
      ~sport:1234 ~dport:80 ()
  in
  Alcotest.(check bool) "eq" true (Invariant.holds_on (prop "dport=80") p);
  Alcotest.(check bool) "conj" true (Invariant.holds_on (prop "dport=80&ip_proto=6") p);
  Alcotest.(check bool) "ne" false (Invariant.holds_on (prop "dport!=80") p);
  Alcotest.(check bool) "lt" true (Invariant.holds_on (prop "dport<100") p)

let test_never_reaches_proven () =
  (* snort forwards only decodable protocols, all with ttl >= 1. *)
  let o = Invariant.never_reaches [ node "snort"; node "firewall" ] (prop "ip_ttl<=0") in
  Alcotest.(check bool) "proven" true (o.Invariant.status = Invariant.Proven);
  Alcotest.(check bool) "no counterexample" true (o.Invariant.counterexample = None)

let test_never_reaches_violated () =
  let nodes = [ node "snort"; node "firewall" ] in
  let p80 = prop "dport=80" in
  let o = Invariant.never_reaches nodes p80 in
  Alcotest.(check bool) "violated" true (o.Invariant.status = Invariant.Violated);
  match o.Invariant.counterexample with
  | None -> Alcotest.fail "violation must ship a counterexample"
  | Some cex ->
      (* The counterexample replays through the reference chain... *)
      let chain =
        Verify.Network.chain
          (List.map (fun (id, m, s) -> Verify.Network.node id m s) nodes)
      in
      let outs = fst (Verify.Network.push chain cex) in
      Alcotest.(check bool) "interpreter reproduces" true
        (List.exists (Invariant.holds_on p80) outs);
      (* ...and through the compiled chain runtime. *)
      let eng = Nfactor_runtime.Chainengine.create (Nfactor_runtime.Chainplan.link nodes) in
      let compiled = Nfactor_runtime.Chainengine.step eng cex in
      Alcotest.(check bool) "compiled chain reproduces" true
        (List.exists (Invariant.holds_on p80) compiled)

let test_state_implies_drop () =
  (* Outside source to a closed port dies at the firewall under the
     empty-pinhole snapshot. *)
  let nodes = [ node "firewall"; node "nat" ] in
  let o =
    Invariant.state_implies_drop nodes ~from_:"firewall" ~to_:"firewall"
      ~cls:(prop "ip_src=8.8.8.8&dport=9999")
  in
  Alcotest.(check bool) "proven" true (o.Invariant.status = Invariant.Proven);
  (* dport=53 escapes nat untouched: violated, with a live witness. *)
  let nodes2 = [ node "nat"; node "snort" ] in
  let o2 =
    Invariant.state_implies_drop nodes2 ~from_:"nat" ~to_:"snort" ~cls:(prop "dport=53")
  in
  Alcotest.(check bool) "violated" true (o2.Invariant.status = Invariant.Violated);
  (match o2.Invariant.counterexample with
  | None -> Alcotest.fail "violation must ship a counterexample"
  | Some cex ->
      Alcotest.(check bool) "cex in class" true (Invariant.holds_on (prop "dport=53") cex);
      let eng =
        Nfactor_runtime.Chainengine.create (Nfactor_runtime.Chainplan.link nodes2)
      in
      Alcotest.(check bool) "compiled chain forwards it" true
        (Nfactor_runtime.Chainengine.step eng cex <> []));
  (* Unknown ids raise a descriptive error. *)
  match
    Invariant.state_implies_drop nodes ~from_:"nosuch" ~to_:"nat" ~cls:(prop "dport=53")
  with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the missing node" true (contains msg "nosuch")
  | _ -> Alcotest.fail "bad node id must raise"

let test_order_equiv () =
  (* Two pure per-packet filters commute (acl does NOT qualify: it
     decrements ttl, which flips snort's ttl>=1 check). *)
  let o = Invariant.order_equiv [ node "snort"; node "ips" ] [ node "ips"; node "snort" ] in
  Alcotest.(check bool) "commutes" true (o.Invariant.status = Invariant.Proven);
  (* acl decrements ttl, which flips snort's ttl check depending on
     which side of the acl it sits — orders disagree. *)
  let o2 =
    Invariant.order_equiv [ node "acl"; node "snort" ] [ node "snort"; node "acl" ]
  in
  Alcotest.(check bool) "order matters" true (o2.Invariant.status = Invariant.Violated);
  Alcotest.(check bool) "with witness" true (o2.Invariant.counterexample <> None)

let test_json () =
  let o = Invariant.never_reaches [ node "snort" ] (prop "ip_ttl<=0") in
  let j = Invariant.json_of_outcome o in
  Alcotest.(check bool) "status field" true (contains j "\"status\": \"proven\"");
  Alcotest.(check bool) "classes field" true (contains j "\"classes_checked\"")

let suite =
  [
    Alcotest.test_case "property parsing" `Quick test_parse;
    Alcotest.test_case "concrete property evaluation" `Quick test_holds_on;
    Alcotest.test_case "never_reaches: proven" `Quick test_never_reaches_proven;
    Alcotest.test_case "never_reaches: violated with replaying counterexample" `Quick
      test_never_reaches_violated;
    Alcotest.test_case "state_implies_drop: proven, violated, bad ids" `Quick
      test_state_implies_drop;
    Alcotest.test_case "order_equiv: commuting and non-commuting chains" `Quick
      test_order_equiv;
    Alcotest.test_case "outcome JSON" `Quick test_json;
  ]
