let () =
  Alcotest.run "nfactor"
    [
      ("addr", Test_addr.suite);
      ("pkt", Test_pkt.suite);
      ("tcp_fsm", Test_tcp_fsm.suite);
      ("traffic", Test_traffic.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("inline", Test_inline.suite);
      ("transform", Test_transform.suite);
      ("cfg", Test_cfg.suite);
      ("dominance/cdg", Test_dominance.suite);
      ("dataflow", Test_dataflow.suite);
      ("slicing", Test_slice.suite);
      ("value", Test_value.suite);
      ("interp", Test_interp.suite);
      ("sexpr", Test_sexpr.suite);
      ("solver", Test_solver.suite);
      ("explore", Test_explore.suite);
      ("explore-budget", Test_explore_budget.suite);
      ("statealyzer", Test_statealyzer.suite);
      ("extract", Test_extract.suite);
      ("equiv", Test_equiv.suite);
      ("verify", Test_verify.suite);
      ("corpus-ext", Test_corpus_ext.suite);
      ("properties", Test_properties.suite);
      ("fsm", Test_fsm.suite);
      ("model-io", Test_model_io.suite);
      ("symreach", Test_symreach.suite);
      ("portknock", Test_portknock.suite);
      ("model", Test_model.suite);
      ("codec", Test_codec.suite);
      ("mirror/flow", Test_mirror_flow.suite);
      ("misc", Test_misc.suite);
      ("acl", Test_acl.suite);
    ]
