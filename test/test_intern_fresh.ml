(* Model_io round-trip across a fresh intern table.

   Term ids are session-local: a serialized model read by a process
   with a different intern table must rebuild structurally identical
   terms through the smart constructors. We simulate the second
   process by resetting the intern table between write and read.

   This lives in its own test executable because
   [Sexpr.unsafe_reset_intern] invalidates every live term's
   interning guarantee — running it inside the main suite would
   corrupt other tests' fixtures. *)

open Symexec
open Nfactor

let extract name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

let test_fresh_table_roundtrip () =
  let m = (extract "lb").Extract.model in
  let text = Model_io.to_string m in
  let rendered = Model.to_string m in
  (* Keep structural copies of the old-table atoms; physical identity
     with them is void after the reset, structure is not. *)
  let old_atoms =
    List.concat_map
      (fun (e : Model.entry) ->
        List.map
          (fun (l : Solver.literal) -> l.Solver.atom)
          (e.Model.config @ e.Model.flow_match @ e.Model.state_match
         @ e.Model.residual_match))
      m.Model.entries
  in
  Sexpr.unsafe_reset_intern ();
  let m' = Model_io.of_string text in
  Alcotest.(check string) "renders identically across tables" rendered
    (Model.to_string m');
  let new_atoms =
    List.concat_map
      (fun (e : Model.entry) ->
        List.map
          (fun (l : Solver.literal) -> l.Solver.atom)
          (e.Model.config @ e.Model.flow_match @ e.Model.state_match
         @ e.Model.residual_match))
      m'.Model.entries
  in
  Alcotest.(check int) "same atom census" (List.length old_atoms)
    (List.length new_atoms);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Sexpr.to_string b ^ " structurally equal")
        true (Sexpr.equal_structural a b))
    old_atoms new_atoms;
  (* The fresh table interns the reread model maximally: parsing the
     same text twice yields physically equal terms. *)
  let m'' = Model_io.of_string text in
  List.iter2
    (fun (e' : Model.entry) (e'' : Model.entry) ->
      List.iter2
        (fun (a : Solver.literal) (b : Solver.literal) ->
          Alcotest.(check bool)
            (Sexpr.to_string a.Solver.atom ^ " re-interned")
            true
            (Sexpr.equal a.Solver.atom b.Solver.atom))
        (e'.Model.config @ e'.Model.flow_match @ e'.Model.state_match)
        (e''.Model.config @ e''.Model.flow_match @ e''.Model.state_match))
    m'.Model.entries m''.Model.entries

let test_fresh_table_counts_restart () =
  (* Pinned constants survive the reset; everything else is gone. *)
  ignore (Sexpr.mk_bin Nfl.Ast.Add (Sexpr.sym "a") (Sexpr.sym "b"));
  let before = Sexpr.intern_count () in
  Sexpr.unsafe_reset_intern ();
  let after = Sexpr.intern_count () in
  Alcotest.(check bool) "table shrank" true (after < before);
  (* Constructing the same terms again repopulates deterministically. *)
  let x = Sexpr.mk_bin Nfl.Ast.Add (Sexpr.sym "a") (Sexpr.sym "b") in
  let y = Sexpr.mk_bin Nfl.Ast.Add (Sexpr.sym "a") (Sexpr.sym "b") in
  Alcotest.(check bool) "re-interned shared" true (Sexpr.equal x y)

let () =
  Alcotest.run "intern-fresh"
    [
      ( "fresh-table",
        [
          Alcotest.test_case "model_io roundtrip" `Quick test_fresh_table_roundtrip;
          Alcotest.test_case "reset restarts the table" `Quick
            test_fresh_table_counts_restart;
        ] );
    ]
