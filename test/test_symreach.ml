open Nfactor
open Verify
open Symexec

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

let node name =
  let ex = extract_nf name in
  (name, ex.Extract.model, Model_interp.initial_store ex)

let in_sym f = Sexpr.sym ("in." ^ f)

let test_snort_classes () =
  (* snort as a tap: the forwarding classes are exactly the decodable
     protocols; outputs are unmodified. *)
  let classes = Symreach.classes [ node "snort" ] in
  Alcotest.(check int) "three forwarding classes (tcp/udp/icmp)" 3 (List.length classes);
  List.iter
    (fun (c : Symreach.cls) ->
      List.iter
        (fun (f, e) ->
          Alcotest.(check bool) (f ^ " unmodified") true (Sexpr.equal e (in_sym f)))
        c.Symreach.pkt)
    classes

let test_firewall_empty_state_classes () =
  (* With no pinholes installed, the only way in from outside is an
     open service port. *)
  let classes = Symreach.classes [ node "firewall" ] in
  (* outbound class + inbound-open-port class(es). *)
  Alcotest.(check bool) "at least two classes" true (List.length classes >= 2);
  (* No class may rewrite headers (the firewall only filters). *)
  List.iter
    (fun (c : Symreach.cls) ->
      List.iter
        (fun (f, e) ->
          Alcotest.(check bool) (f ^ " unmodified") true (Sexpr.equal e (in_sym f)))
        c.Symreach.pkt)
    classes

let test_firewall_state_dependent_reachability () =
  (* The paper's stateful-verification pitch: the same question under
     two state snapshots gives different answers. *)
  let ex = extract_nf "firewall" in
  let m = ex.Extract.model in
  let empty_store = Model_interp.initial_store ex in
  (* A store with one installed pinhole (as if 192.168.1.5:7777 had
     contacted 8.8.8.8:9999). *)
  let pinhole =
    Value.Tuple
      [
        Value.Int (Packet.Addr.of_string "192.168.1.5");
        Value.Int 7777;
        Value.Int (Packet.Addr.of_string "8.8.8.8");
        Value.Int 9999;
      ]
  in
  let store_with =
    Model_interp.Smap.add "conn_table" (Value.Dict [ (pinhole, Value.Int 1) ]) empty_store
  in
  (* Property: output headed to the inside host on the pinhole port. *)
  let property (pkt : Symreach.sym_pkt) =
    [
      Solver.lit
        (Sexpr.mk_bin Nfl.Ast.Eq (List.assoc "ip_dst" pkt)
           (Sexpr.int (Packet.Addr.of_string "192.168.1.5")))
        true;
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Eq (List.assoc "dport" pkt) (Sexpr.int 7777)) true;
      (* restrict to external sources so the outbound class does not
         trivially satisfy the property *)
      Solver.lit
        (Sexpr.mk_bin Nfl.Ast.Eq (List.assoc "ip_src" pkt)
           (Sexpr.int (Packet.Addr.of_string "8.8.8.8")))
        true;
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Eq (List.assoc "sport" pkt) (Sexpr.int 9999)) true;
      (* ... and to a non-service port *)
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Ne (List.assoc "dport" pkt) (Sexpr.int 80)) true;
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Ne (List.assoc "dport" pkt) (Sexpr.int 443)) true;
    ]
  in
  let before = Symreach.reachable [ ("fw", m, empty_store) ] ~property in
  let after = Symreach.reachable [ ("fw", m, store_with) ] ~property in
  Alcotest.(check int) "unreachable before pinhole" 0 (List.length before);
  Alcotest.(check bool) "reachable after pinhole" true (after <> [])

let test_lb_rewrites_visible () =
  (* LB classes rewrite the destination to a concrete backend. *)
  let classes = Symreach.classes [ node "lb" ] in
  let rewriting =
    List.filter
      (fun (c : Symreach.cls) ->
        not (Sexpr.equal (List.assoc "ip_dst" c.Symreach.pkt) (in_sym "ip_dst")))
      classes
  in
  Alcotest.(check bool) "rewriting classes exist" true (rewriting <> [])

let test_chain_composition_classes () =
  (* snort in front of the firewall composes transfer functions: the
     classes are the product of decodable-protocol and firewall
     classes, with the snort hop recorded first. *)
  let classes = Symreach.classes [ node "snort"; node "firewall" ] in
  Alcotest.(check bool) "classes exist" true (classes <> []);
  List.iter
    (fun (c : Symreach.cls) ->
      match c.Symreach.fired with
      | ("snort", _) :: ("firewall", _) :: [] -> ()
      | _ -> Alcotest.fail "each class fires exactly one entry per hop")
    classes

let test_classes_are_feasible_and_disjointish () =
  (* Every reported class is solver-feasible. *)
  List.iter
    (fun (c : Symreach.cls) ->
      Alcotest.(check bool) "feasible" true (Solver.check c.Symreach.constraints = Solver.Sat))
    (Symreach.classes [ node "nat" ])

(* Property (paper Section 4): with drop classes tracked, the
   end-to-end classes of a chain partition the unconstrained input
   header space — every concrete probe lands in exactly one class
   (grouping by fired path: multi-packet emits produce one class per
   snapshot over the same constraints). *)
let prop_classes_partition =
  let chains =
    [
      [ "snort"; "firewall" ];
      [ "nat"; "snort" ];
      [ "firewall"; "nat"; "snort" ];
    ]
  in
  let partitions =
    List.map (fun names -> (names, Symreach.classes ~drops:true (List.map node names))) chains
  in
  QCheck.Test.make ~name:"property: chain classes partition the input space" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let pkt = Packet.Traffic.random_pkt rng Packet.Traffic.default_profile in
      List.for_all
        (fun (names, classes) ->
          let matching =
            List.filter (fun c -> Symreach.satisfies c pkt) classes
            |> List.map (fun (c : Symreach.cls) -> c.Symreach.fired)
            |> List.sort_uniq compare
          in
          if List.length matching <> 1 then
            QCheck.Test.fail_reportf "packet %s lands in %d classes of [%s]"
              (Packet.Pkt.to_string pkt) (List.length matching)
              (String.concat "," names)
          else true)
        partitions)

let test_drop_classes_partition () =
  (* The drops-tracked classes include the dead ones, and the alive
     subset is exactly what the default (drops:false) view reports. *)
  let nodes = [ node "snort"; node "firewall" ] in
  let all = Symreach.classes ~drops:true nodes in
  let alive = List.filter (fun (c : Symreach.cls) -> c.Symreach.alive) all in
  let default = Symreach.classes nodes in
  Alcotest.(check int) "alive subset = default classes" (List.length default)
    (List.length alive);
  Alcotest.(check bool) "dead classes exist" true
    (List.exists (fun (c : Symreach.cls) -> not c.Symreach.alive) all);
  (* Dead classes keep the fired prefix up to the dropping entry. *)
  List.iter
    (fun (c : Symreach.cls) ->
      if not c.Symreach.alive then
        Alcotest.(check bool) "died somewhere in the chain" true
          (List.length c.Symreach.fired >= 1 && List.length c.Symreach.fired <= 2))
    all

let suite =
  [
    Alcotest.test_case "snort classes" `Quick test_snort_classes;
    Alcotest.test_case "firewall classes (empty state)" `Quick test_firewall_empty_state_classes;
    Alcotest.test_case "state-dependent reachability" `Quick test_firewall_state_dependent_reachability;
    Alcotest.test_case "LB rewrites visible" `Quick test_lb_rewrites_visible;
    Alcotest.test_case "chain composition classes" `Quick test_chain_composition_classes;
    Alcotest.test_case "class feasibility" `Quick test_classes_are_feasible_and_disjointish;
    Alcotest.test_case "drop classes complete the partition" `Quick test_drop_classes_partition;
    QCheck_alcotest.to_alcotest prop_classes_partition;
  ]
