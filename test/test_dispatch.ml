(* The match compiler's decision structure (lib/runtime/compile): the
   per-flow FSM level, the interval-splitting value dispatch, scan
   survival for residual-match entries, and first-match-wins — each
   checked both structurally (plan node counts, hit counters) and
   differentially against the reference interpreter. *)

open Symexec
open Nfactor_runtime

let smap_of kvs =
  List.fold_left
    (fun acc (k, v) -> Nfactor.Model_interp.Smap.add k v acc)
    Nfactor.Model_interp.Smap.empty kvs

let lit e = Solver.lit e true
let cmp op a b = lit (Sexpr.mk_bin op a b)
let dport = Sexpr.sym "pkt.dport"
let sport = Sexpr.sym "pkt.sport"

let entry ?(config = []) ?(flow = []) ?(state = []) ?(residual = [])
    ?(action = Nfactor.Model.Forward [ [] ]) ?(update = []) () =
  {
    Nfactor.Model.config;
    flow_match = flow;
    state_match = state;
    residual_match = residual;
    pkt_action = action;
    state_update = update;
    path_sids = [];
    truncated = false;
  }

let model entries =
  {
    Nfactor.Model.nf_name = "synthetic";
    pkt_var = "pkt";
    cfg_vars = [];
    ois_vars = [];
    entries;
  }

(* forward, tagging the packet's sport so outputs identify the entry *)
let tag n = Nfactor.Model.Forward [ [ ("sport", Sexpr.int n) ] ]

let pkt ?(sport = 40000) ~dport () =
  Packet.Pkt.make ~ip_src:(Packet.Addr.ip 10 0 0 1)
    ~ip_dst:(Packet.Addr.ip 10 0 0 2) ~sport ~dport ()

(* Step the interpreter and the engine on the same packet and insist on
   identical fired entry and outputs. Stateless models only — the store
   is not threaded. *)
let check_agree ?(msg = "") m store eng p =
  let r = Nfactor.Model_interp.step m store p in
  let o = Engine.step eng p in
  Alcotest.(check (option int))
    (Printf.sprintf "%sfired (dport=%d)" msg p.Packet.Pkt.dport)
    r.Nfactor.Model_interp.matched o.Engine.fired;
  Alcotest.(check bool)
    (Printf.sprintf "%soutputs (dport=%d)" msg p.Packet.Pkt.dport)
    true
    (List.length r.Nfactor.Model_interp.outputs = List.length o.Engine.outputs
    && List.for_all2 Packet.Pkt.equal r.Nfactor.Model_interp.outputs
         o.Engine.outputs);
  o.Engine.fired

(* Ordered comparisons against integer constants must become one range
   node whose cuts split the line at every constant; the boundary
   packets walk every class (gap below, the cut itself, gap above) and
   must agree with the interpreter on each. *)
let test_interval_split () =
  let m =
    model
      [
        entry ~flow:[ cmp Nfl.Ast.Lt dport (Sexpr.int 100) ] ~action:(tag 1) ();
        entry
          ~flow:
            [ cmp Nfl.Ast.Ge dport (Sexpr.int 100); cmp Nfl.Ast.Le dport (Sexpr.int 999) ]
          ~action:(tag 2) ();
        entry ~flow:[ cmp Nfl.Ast.Eq dport (Sexpr.int 5000) ] ~action:(tag 3) ();
        entry ~flow:[ cmp Nfl.Ast.Gt dport (Sexpr.int 5000) ] ~action:(tag 4) ();
      ]
  in
  let store = smap_of [] in
  let plan = Compile.compile m ~config:store in
  Alcotest.(check bool) "a range node exists" true (plan.Compile.nodes.Compile.n_range >= 1);
  Alcotest.(check int) "all entries dispatched" 4 plan.Compile.indexed;
  let eng = Engine.create plan ~store in
  let boundaries = [ 0; 1; 99; 100; 101; 500; 999; 1000; 4999; 5000; 5001; 65535 ] in
  List.iter (fun d -> ignore (check_agree m store eng (pkt ~dport:d ()))) boundaries;
  (* spot-check the class → entry mapping itself *)
  let fired d = Engine.((step eng (pkt ~dport:d ())).fired) in
  Alcotest.(check (option int)) "dport 99 -> entry 0" (Some 0) (fired 99);
  Alcotest.(check (option int)) "dport 100 -> entry 1" (Some 1) (fired 100);
  Alcotest.(check (option int)) "dport 5000 -> entry 2" (Some 2) (fired 5000);
  Alcotest.(check (option int)) "dport 5001 -> entry 3" (Some 3) (fired 5001);
  Alcotest.(check (option int)) "dport 2000 -> miss" None (fired 2000);
  Alcotest.(check int) "no scan hits" 0 eng.Engine.stats.Engine.scan_hits;
  Alcotest.(check int) "no scan tests" 0 eng.Engine.stats.Engine.scan_tests

(* portknock's per-source stage is the FSM showcase: the plan must
   carry a state node, and under flow traffic every fired packet
   resolves through it — the ordered scan never runs. *)
let test_fsm_partition () =
  let e = Option.get (Nfs.Corpus.find "portknock") in
  let ex = Nfactor.Extract.run ~name:"portknock" (e.Nfs.Corpus.program ()) in
  let m = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let plan = Compile.compile m ~config:store in
  Alcotest.(check bool) "a state node exists" true (plan.Compile.nodes.Compile.n_state >= 1);
  let eng = Engine.create plan ~store in
  (* random traffic rarely hits a knock port — resolve at the dport
     hash; knock-directed traffic must walk the per-source state nodes *)
  let pkts = Packet.Traffic.random_stream ~seed:2016 ~n:2000 () in
  List.iter (fun p -> ignore (Engine.step eng p)) pkts;
  let knock n =
    match Nfactor.Model_interp.Smap.find ("knock" ^ string_of_int n) store with
    | Value.Int p -> p
    | _ -> Alcotest.fail "knock port not an int"
  in
  for i = 0 to 299 do
    ignore
      (Engine.step eng
         (Packet.Pkt.make
            ~ip_src:(Packet.Addr.ip 10 0 0 (1 + (i mod 5)))
            ~ip_dst:(Packet.Addr.ip 10 9 9 9) ~sport:4000
            ~dport:(knock (1 + (i mod 3)))
            ()))
  done;
  let s = eng.Engine.stats in
  Alcotest.(check int) "no scan hits" 0 s.Engine.scan_hits;
  Alcotest.(check int) "no scan tests" 0 s.Engine.scan_tests;
  Alcotest.(check bool) "knock traffic crosses state nodes" true (s.Engine.fsm_hits > 0)

(* Two overlapping entries: the dispatch must preserve entry order
   inside the shared leaf, so the earlier entry wins exactly as the
   interpreter's ordered walk does — in both orderings. *)
let test_first_match_wins () =
  let wide = entry ~flow:[ cmp Nfl.Ast.Lt dport (Sexpr.int 200) ] ~action:(tag 1) () in
  let narrow = entry ~flow:[ cmp Nfl.Ast.Lt dport (Sexpr.int 100) ] ~action:(tag 2) () in
  List.iter
    (fun entries ->
      let m = model entries in
      let store = smap_of [] in
      let eng = Engine.create (Compile.compile m ~config:store) ~store in
      List.iter
        (fun d -> ignore (check_agree m store eng (pkt ~dport:d ())))
        [ 50; 150; 250 ];
      Alcotest.(check (option int)) "overlap fires the first entry" (Some 0)
        Engine.((step eng (pkt ~dport:50 ())).fired))
    [ [ wide; narrow ]; [ narrow; wide ] ]

(* A residual_match marks an entry as not fully classified: it must
   ride through every dispatch class untouched and resolve only by the
   ordered scan (scan attribution), while classified entries around it
   still dispatch — and the interpreter, which ignores residuals, must
   agree on every verdict. *)
let test_residual_scan () =
  let m =
    model
      [
        entry
          ~flow:[ cmp Nfl.Ast.Lt dport (Sexpr.int 100) ]
          ~residual:[ cmp Nfl.Ast.Ge sport (Sexpr.int 0) ]
          ~action:(tag 1) ();
        entry ~flow:[ cmp Nfl.Ast.Ge dport (Sexpr.int 100) ] ~action:(tag 2) ();
      ]
  in
  let store = smap_of [] in
  let plan = Compile.compile m ~config:store in
  Alcotest.(check int) "one entry is scan-only" 1 plan.Compile.scanned;
  Alcotest.(check int) "one entry dispatched" 1 plan.Compile.indexed;
  let eng = Engine.create plan ~store in
  Alcotest.(check (option int)) "residual entry still fires" (Some 0)
    (check_agree m store eng (pkt ~dport:50 ()));
  Alcotest.(check int) "attributed to the scan" 1 eng.Engine.stats.Engine.scan_hits;
  Alcotest.(check (option int)) "classified entry dispatches" (Some 1)
    (check_agree m store eng (pkt ~dport:500 ()));
  Alcotest.(check int) "dispatch hit recorded" 1
    (eng.Engine.stats.Engine.tree_hits + eng.Engine.stats.Engine.index_hits)

(* Random synthetic comparison models: whatever tree the compiler
   builds from random cuts and polarities, it must agree with the
   interpreter packet by packet — constants and ports drawn from the
   same small range so boundaries actually get hit. *)
let prop_random_trees =
  QCheck.Test.make ~name:"property: random range models == interpreter" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let ops = [| Nfl.Ast.Lt; Nfl.Ast.Le; Nfl.Ast.Gt; Nfl.Ast.Ge; Nfl.Ast.Eq; Nfl.Ast.Ne |] in
      let fields = [| dport; sport |] in
      let rand_lit () =
        let op = ops.(Random.State.int rng (Array.length ops)) in
        let f = fields.(Random.State.int rng (Array.length fields)) in
        Solver.lit
          (Sexpr.mk_bin op f (Sexpr.int (Random.State.int rng 64)))
          (Random.State.bool rng)
      in
      let entries =
        List.init
          (1 + Random.State.int rng 4)
          (fun i ->
            entry
              ~flow:(List.init (1 + Random.State.int rng 2) (fun _ -> rand_lit ()))
              ~action:(tag (i + 1)) ())
      in
      let m = model entries in
      let store = smap_of [] in
      let eng = Engine.create (Compile.compile m ~config:store) ~store in
      List.for_all
        (fun _ ->
          let p =
            pkt
              ~sport:(Random.State.int rng 64)
              ~dport:(Random.State.int rng 64)
              ()
          in
          let r = Nfactor.Model_interp.step m store p in
          let o = Engine.step eng p in
          r.Nfactor.Model_interp.matched = o.Engine.fired
          && List.length r.Nfactor.Model_interp.outputs
             = List.length o.Engine.outputs
          && List.for_all2 Packet.Pkt.equal r.Nfactor.Model_interp.outputs
               o.Engine.outputs)
        (List.init 80 Fun.id))

(* Recompile-under-new-config: random knock sequences drive portknock's
   state machine through different FSM partitions; the engine must
   track the interpreter through full runs including the final store. *)
let prop_portknock_configs =
  QCheck.Test.make ~name:"property: portknock dispatch across random configs" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let e = Option.get (Nfs.Corpus.find "portknock") in
      let ex = Nfactor.Extract.run ~name:"portknock" (e.Nfs.Corpus.program ()) in
      let m = ex.Nfactor.Extract.model in
      let store0 = Nfactor.Model_interp.initial_store ex in
      let rng = Random.State.make [| seed |] in
      let k1 = 1 + Random.State.int rng 65535
      and k2 = 1 + Random.State.int rng 65535
      and k3 = 1 + Random.State.int rng 65535 in
      let store =
        List.fold_left
          (fun acc (name, v) -> Nfactor.Model_interp.Smap.add name (Value.Int v) acc)
          store0
          [ ("knock1", k1); ("knock2", k2); ("knock3", k3) ]
      in
      let eng = Engine.of_model m ~config:store ~store in
      (* traffic biased onto the knock ports so sequences complete *)
      let dports = [| k1; k2; k3; 22; 443 |] in
      let pkts =
        List.init 300 (fun i ->
            Packet.Pkt.make
              ~ip_src:(Packet.Addr.ip 10 0 0 (1 + (i mod 4)))
              ~ip_dst:(Packet.Addr.ip 10 9 9 9)
              ~sport:(1024 + Random.State.int rng 1000)
              ~dport:dports.(Random.State.int rng (Array.length dports))
              ())
      in
      let ref_store, ref_out = Nfactor.Model_interp.run m ~store ~pkts in
      let outs = Engine.run_batch eng (Array.of_list pkts) in
      List.for_all2
        (fun r (o : Engine.outcome) ->
          List.length r = List.length o.Engine.outputs
          && List.for_all2 Packet.Pkt.equal r o.Engine.outputs)
        ref_out (Array.to_list outs)
      && Nfactor.Model_interp.Smap.equal Value.equal ref_store (Engine.snapshot eng)
      && eng.Engine.stats.Engine.scan_hits = 0)

let suite =
  [
    Alcotest.test_case "interval splitting" `Quick test_interval_split;
    Alcotest.test_case "fsm partition on portknock" `Quick test_fsm_partition;
    Alcotest.test_case "first match wins" `Quick test_first_match_wins;
    Alcotest.test_case "residual entries scan" `Quick test_residual_scan;
    QCheck_alcotest.to_alcotest prop_random_trees;
    QCheck_alcotest.to_alcotest prop_portknock_configs;
  ]
