(* The static model analyzer: the Imply lattice, the lint layer's
   evidence discipline (proofs, witnesses, the residual-match Info
   downgrade), the Equiv-gated minimizer, and the pipeline's analyze
   pass (caching + artifact round-trip). *)

open Nfactor
open Symexec

let dport = Sexpr.sym "pkt.dport"
let sport = Sexpr.sym "pkt.sport"
let cmp op a b = Sexpr.mk_bin op a b
let i n = Sexpr.int n
let pos a = Solver.lit a true
let neg a = Solver.lit a false

(* --------------------------------------------------------------- *)
(* Imply: the implication lattice                                   *)
(* --------------------------------------------------------------- *)

let test_imply_band_subset () =
  (* (dp & 15) == 2 forces (dp & 7) == 2: mask 7 is a submask of 15. *)
  let l15 = pos (cmp Nfl.Ast.Eq (cmp Nfl.Ast.Band dport (i 15)) (i 2)) in
  let l7 = neg (cmp Nfl.Ast.Eq (cmp Nfl.Ast.Band dport (i 7)) (i 2)) in
  Alcotest.(check bool) "band subset contradiction" true (Analysis.Imply.unsat [ l15; l7 ]);
  (* ... and the solver alone cannot see it (opaque & atoms). *)
  Alcotest.(check bool) "solver alone says Sat" true (Solver.check [ l15; l7 ] = Solver.Sat)

let test_imply_band_out_of_mask () =
  (* (dp & 3) == 5 is absurd: 5 has bits outside the mask. *)
  let l = pos (cmp Nfl.Ast.Eq (cmp Nfl.Ast.Band dport (i 3)) (i 5)) in
  Alcotest.(check bool) "result outside mask" true (Analysis.Imply.unsat [ l ])

let test_imply_intervals () =
  let ge5 = pos (cmp Nfl.Ast.Ge dport (i 5)) in
  let le3 = pos (cmp Nfl.Ast.Le dport (i 3)) in
  Alcotest.(check bool) "empty interval" true (Analysis.Imply.unsat [ ge5; le3 ]);
  (* width-2 interval fully covered by disequalities *)
  let in01 = [ pos (cmp Nfl.Ast.Ge dport (i 0)); pos (cmp Nfl.Ast.Le dport (i 1)) ] in
  let ne0 = neg (cmp Nfl.Ast.Eq dport (i 0)) in
  let ne1 = neg (cmp Nfl.Ast.Eq dport (i 1)) in
  Alcotest.(check bool) "ne-covered interval" true
    (Analysis.Imply.unsat (in01 @ [ ne0; ne1 ]));
  Alcotest.(check bool) "partially covered is sat" false
    (Analysis.Imply.unsat (in01 @ [ ne0 ]))

let test_imply_implication () =
  let eq80 = pos (cmp Nfl.Ast.Eq dport (i 80)) in
  let ge80 = pos (cmp Nfl.Ast.Ge dport (i 80)) in
  Alcotest.(check bool) "eq implies ge" true (Analysis.Imply.implies [ eq80 ] ge80);
  Alcotest.(check bool) "ge does not imply eq" false (Analysis.Imply.implies [ ge80 ] eq80);
  Alcotest.(check bool) "subsumes" true (Analysis.Imply.subsumes [ eq80 ] [ ge80 ]);
  Alcotest.(check bool) "no reverse subsumption" false
    (Analysis.Imply.subsumes [ ge80 ] [ eq80 ])

let test_imply_disjunction_split () =
  (* (dp == 1 || dp == 2) && dp == 3 is unsat via the bounded case split. *)
  let disj =
    pos (cmp Nfl.Ast.Or (cmp Nfl.Ast.Eq dport (i 1)) (cmp Nfl.Ast.Eq dport (i 2)))
  in
  let eq3 = pos (cmp Nfl.Ast.Eq dport (i 3)) in
  Alcotest.(check bool) "disjunction split" true (Analysis.Imply.unsat [ disj; eq3 ]);
  let eq2 = pos (cmp Nfl.Ast.Eq dport (i 2)) in
  Alcotest.(check bool) "consistent disjunct stays sat" false
    (Analysis.Imply.unsat [ disj; eq2 ])

let test_imply_sound_on_unknowns () =
  (* Opaque atoms: consistent polarities must never be reported unsat. *)
  let mem = Sexpr.mk_mem (Sexpr.dict_base "tbl") dport in
  Alcotest.(check bool) "opaque atom alone" false (Analysis.Imply.unsat [ pos mem ]);
  Alcotest.(check bool) "opposite polarities" true
    (Analysis.Imply.unsat [ pos mem; neg mem ])

(* --------------------------------------------------------------- *)
(* Lint on hand-built tables                                        *)
(* --------------------------------------------------------------- *)

let entry ?(config = []) ?(flow = []) ?(state = []) ?(residual = [])
    ?(action = Model.Drop) ?(update = []) () =
  {
    Model.config;
    flow_match = flow;
    state_match = state;
    residual_match = residual;
    pkt_action = action;
    state_update = update;
    path_sids = [];
    truncated = false;
  }

let model ?(ois = []) entries =
  { Model.nf_name = "hand"; pkt_var = "pkt"; cfg_vars = []; ois_vars = ois; entries }

let send = Model.Forward [ [] ]
let store0 = Model_interp.Smap.empty

let find_kind report k =
  List.filter (fun (f : Analysis.Lint.finding) -> k f.Analysis.Lint.f_kind)
    report.Analysis.Lint.r_findings

let test_lint_dead_entry () =
  let m =
    model
      [
        entry ~flow:[ pos (cmp Nfl.Ast.Eq dport (i 80)); neg (cmp Nfl.Ast.Eq dport (i 80)) ]
          ~action:send ();
        entry ~action:send ();
      ]
  in
  let r = Analysis.Lint.model_lint ~store:store0 m in
  match find_kind r (function Analysis.Lint.Dead -> true | _ -> false) with
  | [ f ] ->
      Alcotest.(check bool) "error severity" true (f.Analysis.Lint.f_severity = Analysis.Lint.Error);
      Alcotest.(check bool) "proven" true f.Analysis.Lint.f_proven;
      Alcotest.(check (option int)) "entry 0" (Some 0) f.Analysis.Lint.f_entry
  | fs -> Alcotest.failf "expected exactly one dead finding, got %d" (List.length fs)

let test_lint_shadowed_with_witness () =
  (* Entry 0 matches dport >= 0 (everything); entry 1 matches dport == 80:
     fully shadowed, and the witness must replay. *)
  let m =
    model
      [
        entry ~flow:[ pos (cmp Nfl.Ast.Ge dport (i 0)) ] ~action:send ();
        entry ~flow:[ pos (cmp Nfl.Ast.Eq dport (i 80)) ] ();
      ]
  in
  let r = Analysis.Lint.model_lint ~store:store0 m in
  match find_kind r (function Analysis.Lint.Shadowed _ -> true | _ -> false) with
  | [ f ] ->
      Alcotest.(check bool) "warning" true (f.Analysis.Lint.f_severity = Analysis.Lint.Warning);
      Alcotest.(check bool) "proven" true f.Analysis.Lint.f_proven;
      Alcotest.(check bool) "witness attached" true (f.Analysis.Lint.f_witness <> None);
      Alcotest.(check bool) "witness replays" true (Analysis.Lint.witness_replays m store0 f)
  | fs -> Alcotest.failf "expected one shadowed finding, got %d" (List.length fs)

(* Satellite regression: when the shadowing proof has to lean on an
   earlier entry's residual_match (solver-opaque atoms the lattice
   cannot decide), the finding degrades to Info — never a false
   Warning. *)
let test_lint_residual_downgrades_to_info () =
  let opaque = Sexpr.mk_ufun "hash" [ sport ] in
  let m =
    model
      [
        entry ~flow:[ pos (cmp Nfl.Ast.Ge dport (i 0)) ]
          ~residual:[ pos (cmp Nfl.Ast.Eq opaque (i 1)) ]
          ~action:send ();
        entry ~flow:[ pos (cmp Nfl.Ast.Eq dport (i 80)) ] ();
      ]
  in
  let r = Analysis.Lint.model_lint ~store:store0 m in
  match find_kind r (function Analysis.Lint.Shadowed _ -> true | _ -> false) with
  | [ f ] ->
      Alcotest.(check bool) "downgraded to info" true
        (f.Analysis.Lint.f_severity = Analysis.Lint.Info);
      Alcotest.(check bool) "not claimed proven" false f.Analysis.Lint.f_proven
  | [] -> ()  (* also acceptable: no claim at all rather than a false one *)
  | fs -> Alcotest.failf "expected at most one finding, got %d" (List.length fs)

let test_lint_overlap_ordered_downgrade () =
  (* Partial overlap with different actions: Warning on a table that
     claims disjointness, Info when declared priority-resolved. *)
  let m =
    model
      [
        entry ~flow:[ pos (cmp Nfl.Ast.Le dport (i 100)) ] ~action:send ();
        entry ~flow:[ pos (cmp Nfl.Ast.Ge dport (i 80)) ] ();
      ]
  in
  let sev ordered =
    let r = Analysis.Lint.model_lint ~ordered ~store:store0 m in
    match find_kind r (function Analysis.Lint.Overlap _ -> true | _ -> false) with
    | f :: _ -> Some f.Analysis.Lint.f_severity
    | [] -> None
  in
  Alcotest.(check bool) "unordered overlap is warning" true (sev false = Some Analysis.Lint.Warning);
  Alcotest.(check bool) "ordered overlap is info" true (sev true = Some Analysis.Lint.Info)

let test_lint_dead_write () =
  (* A state var written by some entry but read by none. *)
  let m =
    model ~ois:[ "audit" ]
      [
        entry ~flow:[ pos (cmp Nfl.Ast.Eq dport (i 80)) ] ~action:send
          ~update:[ ("audit", Model.Set_scalar (i 1)) ] ();
        entry ~action:send ();
      ]
  in
  let r = Analysis.Lint.model_lint ~store:store0 m in
  match find_kind r (function Analysis.Lint.Dead_write _ -> true | _ -> false) with
  | [ f ] ->
      Alcotest.(check bool) "dead write flagged" true
        (match f.Analysis.Lint.f_kind with
        | Analysis.Lint.Dead_write v -> v = "audit"
        | _ -> false)
  | fs -> Alcotest.failf "expected one dead-write finding, got %d" (List.length fs)

let test_lint_unwritable_state () =
  (* Guard requires gate == 2, but every transition stores 1 and the
     initial store holds 0. *)
  let gate = Sexpr.sym "gate" in
  let m =
    model ~ois:[ "gate" ]
      [
        entry ~state:[ pos (cmp Nfl.Ast.Eq gate (i 2)) ] ~action:send ();
        entry ~action:send ~update:[ ("gate", Model.Set_scalar (i 1)) ] ();
      ]
  in
  let store = Model_interp.Smap.add "gate" (Value.Int 0) store0 in
  let r = Analysis.Lint.model_lint ~store m in
  Alcotest.(check bool) "unwritable guard flagged" true
    (find_kind r (function Analysis.Lint.Unwritable_state _ -> true | _ -> false) <> [])

let test_chain_dead_write () =
  (* Hop a rewrites ip_ttl; hop b drops everything — the write is dead
     across the chain. *)
  let a =
    {
      (model [ entry ~action:(Model.Forward [ [ ("ip_ttl", i 9) ] ]) () ]) with
      Model.nf_name = "a";
    }
  in
  let b = { (model [ entry ~action:Model.Drop () ]) with Model.nf_name = "b" } in
  let fs = Analysis.Lint.chain_dead_writes [ ("a", a); ("b", b) ] in
  Alcotest.(check bool) "ttl write masked by next hop" true
    (List.exists
       (fun (f : Analysis.Lint.finding) ->
         match f.Analysis.Lint.f_kind with
         | Analysis.Lint.Chain_dead_write (hop, field) -> hop = "b" && field = "ip_ttl"
         | _ -> false)
       fs);
  (* ... but not when the next hop reads the field. *)
  let b_reads =
    {
      (model [ entry ~flow:[ pos (cmp Nfl.Ast.Gt (Sexpr.sym "pkt.ip_ttl") (i 0)) ] ~action:send () ])
      with Model.nf_name = "b";
    }
  in
  Alcotest.(check (list string)) "live across hop" []
    (List.filter_map
       (fun (f : Analysis.Lint.finding) ->
         match f.Analysis.Lint.f_kind with
         | Analysis.Lint.Chain_dead_write (_, field) -> Some field
         | _ -> None)
       (Analysis.Lint.chain_dead_writes [ ("a", a); ("b", b_reads) ]))

let test_report_roundtrip () =
  let e = Option.get (Nfs.Corpus.find "firewall_redundant") in
  let ex = Extract.run ~name:"firewall_redundant" (e.Nfs.Corpus.program ()) in
  let r = Analysis.Lint.run ex in
  let r' = Analysis.Lint.report_of_string (Analysis.Lint.report_to_string r) in
  Alcotest.(check string) "nf survives" r.Analysis.Lint.r_nf r'.Analysis.Lint.r_nf;
  Alcotest.(check int) "findings survive"
    (List.length r.Analysis.Lint.r_findings)
    (List.length r'.Analysis.Lint.r_findings);
  List.iter2
    (fun (a : Analysis.Lint.finding) (b : Analysis.Lint.finding) ->
      Alcotest.(check bool) "kind+severity survive" true
        (a.Analysis.Lint.f_kind = b.Analysis.Lint.f_kind
        && a.Analysis.Lint.f_severity = b.Analysis.Lint.f_severity
        && a.Analysis.Lint.f_entry = b.Analysis.Lint.f_entry))
    r.Analysis.Lint.r_findings r'.Analysis.Lint.r_findings

(* --------------------------------------------------------------- *)
(* The redundant firewall end to end                                *)
(* --------------------------------------------------------------- *)

let redundant_ex =
  lazy
    (let e = Option.get (Nfs.Corpus.find "firewall_redundant") in
     Extract.run ~name:"firewall_redundant" (e.Nfs.Corpus.program ()))

let test_redundant_is_dirty () =
  let r = Analysis.Lint.run (Lazy.force redundant_ex) in
  let errors, _, _ = Analysis.Lint.counts r in
  Alcotest.(check bool) "dead audit branch found" true (errors >= 2);
  Alcotest.(check bool) "dirty" false (Analysis.Lint.is_clean r)

let test_redundant_minimizes () =
  let ex = Lazy.force redundant_ex in
  let store = Model_interp.initial_store ex in
  let o = Analysis.Minimize.run ~store ex.Extract.model in
  Alcotest.(check bool) "verified" true o.Analysis.Minimize.verified;
  Alcotest.(check bool) "at least 20% reduction" true (Analysis.Minimize.reduction o >= 0.2);
  Alcotest.(check int) "dead entries deleted" 2 o.Analysis.Minimize.deleted_dead;
  Alcotest.(check bool) "merges applied" true (o.Analysis.Minimize.merged >= 1);
  (* the minimized table lints clean as an ordered table *)
  let post = Analysis.Lint.model_lint ~ordered:true ~store o.Analysis.Minimize.minimized in
  Alcotest.(check bool) "post-minimization clean" true (Analysis.Lint.is_clean post)

let test_redundant_differential_10k () =
  let ex = Lazy.force redundant_ex in
  let store = Model_interp.initial_store ex in
  let o = Analysis.Minimize.run ~store ex.Extract.model in
  let ch = Packet.Traffic.churn_gen ~concurrent:32 ~seed:77 () in
  let pkts =
    Packet.Traffic.random_stream ~seed:76 ~n:10_000 ()
    @ List.init 1_000 (fun _ -> Packet.Traffic.churn_next ch)
  in
  let v, stores_equal =
    Equiv.model_differential ~store ~pkts ex.Extract.model o.Analysis.Minimize.minimized
  in
  Alcotest.(check int) "no output mismatches" 0 (List.length v.Equiv.mismatches);
  Alcotest.(check bool) "final stores equal" true stores_equal

(* --------------------------------------------------------------- *)
(* Corpus-wide guarantees                                           *)
(* --------------------------------------------------------------- *)

let test_corpus_minimize_exact () =
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      let name = e.Nfs.Corpus.name in
      let ex = Extract.run ~name (e.Nfs.Corpus.program ()) in
      let store = Model_interp.initial_store ex in
      let o = Analysis.Minimize.run ~store ex.Extract.model in
      Alcotest.(check bool) (name ^ " verified") true o.Analysis.Minimize.verified;
      Alcotest.(check bool) (name ^ " never larger") true
        (Model.entry_count o.Analysis.Minimize.minimized
        <= Model.entry_count o.Analysis.Minimize.original);
      Alcotest.(check bool) (name ^ " post-min clean") true
        (Analysis.Lint.is_clean
           (Analysis.Lint.model_lint ~ordered:true ~store o.Analysis.Minimize.minimized)))
    Nfs.Corpus.all

(* --------------------------------------------------------------- *)
(* qcheck: random first-match tables                                 *)
(* --------------------------------------------------------------- *)

(* Small random tables over dport/sport predicates with Drop/send
   actions — adversarial shapes for the rewriter: random tables are
   full of genuine shadows, overlaps and mergeable neighbours. *)
let random_model seed =
  let rng = Packet.Rng.create seed in
  let rand n = Packet.Rng.int rng n in
  let lit () =
    let fld = if rand 2 = 0 then dport else sport in
    let c = i (rand 4) in
    let atom =
      match rand 4 with
      | 0 -> cmp Nfl.Ast.Eq fld c
      | 1 -> cmp Nfl.Ast.Le fld c
      | 2 -> cmp Nfl.Ast.Ge fld c
      | _ -> cmp Nfl.Ast.Eq (cmp Nfl.Ast.Band fld (i 3)) c
    in
    Solver.lit atom (rand 2 = 0)
  in
  let entries =
    List.init
      (2 + rand 6)
      (fun _ ->
        entry
          ~flow:(List.init (1 + rand 2) (fun _ -> lit ()))
          ~action:(if rand 2 = 0 then send else Model.Drop)
          ())
  in
  model entries

let prop_minimize_exact_and_never_larger =
  QCheck.Test.make ~name:"property: minimize is Equiv-exact and never larger" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let m = random_model seed in
      let pkts = Packet.Traffic.random_stream ~seed:(seed + 1) ~n:300 () in
      let o = Analysis.Minimize.run ~pkts:(Verify.Testgen.base_palette @ pkts) ~store:store0 m in
      o.Analysis.Minimize.verified
      && Model.entry_count o.Analysis.Minimize.minimized <= Model.entry_count m
      &&
      (* independent replay on fresh traffic, not the gate's packets *)
      let fresh = Packet.Traffic.random_stream ~seed:(seed + 2) ~n:300 () in
      let v, eq =
        Equiv.model_differential ~store:store0 ~pkts:fresh m o.Analysis.Minimize.minimized
      in
      v.Equiv.mismatches = [] && eq)

(* --------------------------------------------------------------- *)
(* The pipeline pass                                                 *)
(* --------------------------------------------------------------- *)

let analyze_traces m =
  List.filter (fun t -> t.Pipeline.Trace.pass = "analyze") (Pipeline.Manager.traces m)

let test_pipeline_analyze_caches () =
  let e = Option.get (Nfs.Corpus.find "firewall_redundant") in
  let m = Pipeline.Manager.create () in
  let ex = Pipeline.Manager.extract_source m ~name:"firewall_redundant" (e.Nfs.Corpus.source ()) in
  let pre1, o1, _ = Pipeline.Manager.analyze m ex in
  let pre2, o2, _ = Pipeline.Manager.analyze m ex in
  (match analyze_traces m with
  | [ first; second ] ->
      Alcotest.(check bool) "first is a miss" false (Pipeline.Trace.is_hit first);
      Alcotest.(check bool) "second is a mem hit" true
        (second.Pipeline.Trace.status = Pipeline.Trace.Mem_hit)
  | ts -> Alcotest.failf "expected two analyze traces, got %d" (List.length ts));
  Alcotest.(check int) "same findings" (List.length pre1.Analysis.Lint.r_findings)
    (List.length pre2.Analysis.Lint.r_findings);
  Alcotest.(check int) "same table" (Model.entry_count o1.Analysis.Minimize.minimized)
    (Model.entry_count o2.Analysis.Minimize.minimized)

let test_pipeline_analyze_disk_roundtrip () =
  let dir = Filename.temp_file "nfactor_an" "" in
  Sys.remove dir;
  let e = Option.get (Nfs.Corpus.find "firewall_redundant") in
  let run () =
    let m = Pipeline.Manager.create ~cache_dir:dir () in
    let ex =
      Pipeline.Manager.extract_source m ~name:"firewall_redundant" (e.Nfs.Corpus.source ())
    in
    let r = Pipeline.Manager.analyze m ex in
    (r, analyze_traces m)
  in
  let (pre1, o1, post1), t1 = run () in
  let (pre2, o2, post2), t2 = run () in
  Alcotest.(check bool) "cold run computes" true
    (List.exists (fun t -> t.Pipeline.Trace.status = Pipeline.Trace.Miss) t1);
  Alcotest.(check bool) "warm run replays from disk" true
    (List.for_all (fun t -> t.Pipeline.Trace.status = Pipeline.Trace.Disk_hit) t2);
  Alcotest.(check int) "pre findings survive the store"
    (List.length pre1.Analysis.Lint.r_findings)
    (List.length pre2.Analysis.Lint.r_findings);
  Alcotest.(check int) "post findings survive the store"
    (List.length post1.Analysis.Lint.r_findings)
    (List.length post2.Analysis.Lint.r_findings);
  Alcotest.(check string) "minimized model survives the store"
    (Model_io.to_string o1.Analysis.Minimize.minimized)
    (Model_io.to_string o2.Analysis.Minimize.minimized);
  Alcotest.(check bool) "counters survive" true
    (o1.Analysis.Minimize.deleted_dead = o2.Analysis.Minimize.deleted_dead
    && o1.Analysis.Minimize.merged = o2.Analysis.Minimize.merged
    && o1.Analysis.Minimize.widened_literals = o2.Analysis.Minimize.widened_literals
    && o1.Analysis.Minimize.verified = o2.Analysis.Minimize.verified)

let suite =
  [
    Alcotest.test_case "imply: band subset propagation" `Quick test_imply_band_subset;
    Alcotest.test_case "imply: band out of mask" `Quick test_imply_band_out_of_mask;
    Alcotest.test_case "imply: intervals + ne coverage" `Quick test_imply_intervals;
    Alcotest.test_case "imply: implication + subsumption" `Quick test_imply_implication;
    Alcotest.test_case "imply: disjunction split" `Quick test_imply_disjunction_split;
    Alcotest.test_case "imply: sound on opaque atoms" `Quick test_imply_sound_on_unknowns;
    Alcotest.test_case "lint: dead entry is a proven error" `Quick test_lint_dead_entry;
    Alcotest.test_case "lint: shadowed entry ships a replaying witness" `Quick
      test_lint_shadowed_with_witness;
    Alcotest.test_case "lint: residual match downgrades to info" `Quick
      test_lint_residual_downgrades_to_info;
    Alcotest.test_case "lint: overlap severity respects ordering" `Quick
      test_lint_overlap_ordered_downgrade;
    Alcotest.test_case "lint: dead state write" `Quick test_lint_dead_write;
    Alcotest.test_case "lint: unwritable state guard" `Quick test_lint_unwritable_state;
    Alcotest.test_case "lint: chain-hop dead write" `Quick test_chain_dead_write;
    Alcotest.test_case "lint: report serialization round-trips" `Quick test_report_roundtrip;
    Alcotest.test_case "redundant firewall lints dirty" `Quick test_redundant_is_dirty;
    Alcotest.test_case "redundant firewall minimizes >= 20%, post-clean" `Quick
      test_redundant_minimizes;
    Alcotest.test_case "redundant firewall: 10k differential + churn" `Slow
      test_redundant_differential_10k;
    Alcotest.test_case "corpus-wide: minimize exact, never larger, post-clean" `Slow
      test_corpus_minimize_exact;
    QCheck_alcotest.to_alcotest prop_minimize_exact_and_never_larger;
    Alcotest.test_case "pipeline: analyze pass memoizes" `Quick test_pipeline_analyze_caches;
    Alcotest.test_case "pipeline: analyze artifact survives the disk store" `Quick
      test_pipeline_analyze_disk_roundtrip;
  ]
