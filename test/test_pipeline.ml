(* The content-addressed pass pipeline: cached re-runs must be
   indistinguishable from fresh ones (byte-equal models, identical
   classes/slices), fingerprints must be stable exactly when the
   canonical content and stage parameters are, and a corrupted or
   stale cache entry must be recomputed, never trusted. *)

open Pipeline

let ( / ) = Filename.concat

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.get_temp_dir_name ()
      / Printf.sprintf "nfactor-pipeline-test-%d-%d" (Unix.getpid ()) !counter
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (path / f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

(* The pass applications a thunk caused on manager [m], in order. *)
let traced m f =
  let before = List.length (Manager.traces m) in
  let r = f () in
  let after = Manager.traces m in
  (r, List.filteri (fun i _ -> i >= before) after)

let statuses traces = List.map (fun t -> (t.Trace.pass, t.Trace.status)) traces

let synth_passes = [ "canonicalize"; "classify"; "slice"; "explore"; "refine" ]

let check_statuses what expected traces =
  Alcotest.(check (list (pair string string)))
    what
    (List.map (fun (p, s) -> (p, s)) expected)
    (List.map (fun (p, s) -> (p, Trace.status_to_string s)) (statuses traces))

let all_with_status st = List.map (fun p -> (p, st)) synth_passes

let corpus_nf name =
  let e = Option.get (Nfs.Corpus.find name) in
  (e.Nfs.Corpus.source (), e.Nfs.Corpus.program ())

(* ------------------------------------------------------------------ *)
(* Pipeline output == classic Extract.run, corpus-wide                *)
(* ------------------------------------------------------------------ *)

let test_pipeline_equals_extract () =
  let m = Manager.create () in
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      let name = e.Nfs.Corpus.name in
      let direct = Nfactor.Extract.run ~name (e.Nfs.Corpus.program ()) in
      let piped = Manager.extract m ~name (e.Nfs.Corpus.program ()) in
      Alcotest.(check string)
        (name ^ ": model byte-equal")
        (Nfactor.Model_io.to_string direct.Nfactor.Extract.model)
        (Nfactor.Model_io.to_string piped.Nfactor.Extract.model);
      Alcotest.(check (list int))
        (name ^ ": union slice") direct.Nfactor.Extract.union_slice
        piped.Nfactor.Extract.union_slice;
      Alcotest.(check int)
        (name ^ ": path count")
        (List.length direct.Nfactor.Extract.paths)
        (List.length piped.Nfactor.Extract.paths))
    Nfs.Corpus.all

(* ------------------------------------------------------------------ *)
(* Warm disk re-run == fresh run, corpus-wide                         *)
(* ------------------------------------------------------------------ *)

let features_eq (a : Statealyzer.Varclass.t) (b : Statealyzer.Varclass.t) =
  a.Statealyzer.Varclass.pkt_var = b.Statealyzer.Varclass.pkt_var
  && a.Statealyzer.Varclass.features = b.Statealyzer.Varclass.features
  && a.Statealyzer.Varclass.categories = b.Statealyzer.Varclass.categories
  && a.Statealyzer.Varclass.pkt_slice = b.Statealyzer.Varclass.pkt_slice

let test_warm_rerun_identical () =
  with_dir @@ fun dir ->
  let cold_results =
    let m = Manager.create ~cache_dir:dir () in
    List.map
      (fun (e : Nfs.Corpus.entry) ->
        let name = e.Nfs.Corpus.name in
        (name, Manager.extract m ~name (e.Nfs.Corpus.program ())))
      Nfs.Corpus.all
  in
  (* A second session over the same cache dir: every synthesis pass is
     a disk hit and every artifact reconstructs identically. *)
  let m2 = Manager.create ~cache_dir:dir () in
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      let name = e.Nfs.Corpus.name in
      let warm, traces =
        traced m2 (fun () -> Manager.extract m2 ~name (e.Nfs.Corpus.program ()))
      in
      check_statuses (name ^ ": all disk hits") (all_with_status "disk-hit") traces;
      let cold = List.assoc name cold_results in
      Alcotest.(check string)
        (name ^ ": model byte-equal")
        (Nfactor.Model_io.to_string cold.Nfactor.Extract.model)
        (Nfactor.Model_io.to_string warm.Nfactor.Extract.model);
      Alcotest.(check bool)
        (name ^ ": classes identical") true
        (features_eq cold.Nfactor.Extract.classes warm.Nfactor.Extract.classes);
      Alcotest.(check (list int))
        (name ^ ": pkt slice") cold.Nfactor.Extract.pkt_slice warm.Nfactor.Extract.pkt_slice;
      Alcotest.(check (list int))
        (name ^ ": state slice") cold.Nfactor.Extract.state_slice
        warm.Nfactor.Extract.state_slice;
      Alcotest.(check (list int))
        (name ^ ": union slice") cold.Nfactor.Extract.union_slice
        warm.Nfactor.Extract.union_slice;
      Alcotest.(check int)
        (name ^ ": path count")
        (List.length cold.Nfactor.Extract.paths)
        (List.length warm.Nfactor.Extract.paths);
      Alcotest.(check int)
        (name ^ ": recorded stats survive")
        cold.Nfactor.Extract.stats.Symexec.Explore.paths
        warm.Nfactor.Extract.stats.Symexec.Explore.paths)
    Nfs.Corpus.all

(* Warm-loaded extractions must still drive the applications built on
   top of them (the sliced body, program and paths are reconstructed,
   not just the model). *)
let test_warm_extraction_usable () =
  with_dir @@ fun dir ->
  let _, p = corpus_nf "lb" in
  ignore (Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"lb" p);
  let m = Manager.create ~cache_dir:dir () in
  let ex, traces = traced m (fun () -> Manager.extract m ~name:"lb" p) in
  check_statuses "warm" (all_with_status "disk-hit") traces;
  let v = Nfactor.Equiv.random_testing ~seed:11 ~trials:200 ex in
  Alcotest.(check bool) "differential ok on warm extraction" true (Nfactor.Equiv.ok v);
  Alcotest.(check bool) "path sets match" true (Nfactor.Equiv.paths_match ex)

(* ------------------------------------------------------------------ *)
(* In-memory dedup within one manager                                 *)
(* ------------------------------------------------------------------ *)

let test_mem_dedup () =
  let m = Manager.create () in
  let _, p = corpus_nf "balance" in
  let a, t1 = traced m (fun () -> Manager.extract m ~name:"balance" p) in
  check_statuses "first run computes" (all_with_status "miss") t1;
  let b, t2 = traced m (fun () -> Manager.extract m ~name:"balance" p) in
  check_statuses "second run mem-hits" (all_with_status "mem-hit") t2;
  Alcotest.(check string) "same model"
    (Nfactor.Model_io.to_string a.Nfactor.Extract.model)
    (Nfactor.Model_io.to_string b.Nfactor.Extract.model);
  (* The compile pass dedups the same way. *)
  let _, tp1 = traced m (fun () -> Manager.plan m a) in
  let _, tp2 = traced m (fun () -> Manager.plan m b) in
  check_statuses "plan computes once" [ ("compile", "miss") ] tp1;
  check_statuses "plan mem-hits" [ ("compile", "mem-hit") ] tp2

(* ------------------------------------------------------------------ *)
(* Fingerprint stability and sensitivity                              *)
(* ------------------------------------------------------------------ *)

let fingerprints traces = List.map (fun t -> (t.Trace.pass, t.Trace.fingerprint)) traces

let test_fingerprint_stable () =
  let _, p = corpus_nf "lb" in
  let m1 = Manager.create () in
  let m2 = Manager.create () in
  let _, t1 = traced m1 (fun () -> Manager.extract m1 ~name:"lb" p) in
  let _, t2 = traced m2 (fun () -> Manager.extract m2 ~name:"lb" p) in
  Alcotest.(check (list (pair string string)))
    "same source, same fingerprints" (fingerprints t1) (fingerprints t2)

let test_comment_edit_hits_everywhere () =
  with_dir @@ fun dir ->
  let src, _ = corpus_nf "lb" in
  ignore (Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"lb" (Nfl.Parser.program src));
  (* Comment and blank-line edits lex away before the source
     fingerprint is even taken (it digests the parsed AST's text), so
     every pass, canonicalize included, is a disk hit. *)
  let src' = "# cosmetic comment\n\n" ^ src ^ "\n\n# trailing comment\n" in
  let m = Manager.create ~cache_dir:dir () in
  let ex, traces = traced m (fun () -> Manager.extract m ~name:"lb" (Nfl.Parser.program src')) in
  check_statuses "comment edit is invisible" (all_with_status "disk-hit") traces;
  Alcotest.(check bool) "model still validates" true
    (Nfactor.Equiv.ok (Nfactor.Equiv.random_testing ~seed:3 ~trials:100 ex))

let test_cosmetic_edit_hits_from_classify () =
  with_dir @@ fun dir ->
  let src, _ = corpus_nf "lb" in
  ignore (Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"lb" (Nfl.Parser.program src));
  (* A dead helper function changes the parsed AST (so the source
     fingerprint and the canonicalize key move) but is dropped by
     canonicalization: the canonical text is unchanged and everything
     downstream of canonicalize is a disk hit. *)
  let src' =
    Str.global_replace (Str.regexp_string "def pkt_callback")
      "def unused_helper(x) {\n  y = x + 1;\n  return;\n}\n\ndef pkt_callback" src
  in
  Alcotest.(check bool) "edit applies" true (src' <> src);
  let m = Manager.create ~cache_dir:dir () in
  let ex, traces = traced m (fun () -> Manager.extract m ~name:"lb" (Nfl.Parser.program src')) in
  check_statuses "canonicalize recomputes, rest hit"
    (("canonicalize", "miss") :: List.map (fun p -> (p, "disk-hit")) (List.tl synth_passes))
    traces;
  Alcotest.(check bool) "model still validates" true
    (Nfactor.Equiv.ok (Nfactor.Equiv.random_testing ~seed:3 ~trials:100 ex))

let test_semantic_edit_recomputes () =
  with_dir @@ fun dir ->
  let src, _ = corpus_nf "lb" in
  ignore (Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"lb" (Nfl.Parser.program src));
  (* A semantic edit changes the canonical text: nothing downstream may
     be served from the old entries (their keys all move). *)
  let src' = Str.global_replace (Str.regexp_string "10000") "20000" src in
  Alcotest.(check bool) "edit applies" true (src' <> src);
  let m = Manager.create ~cache_dir:dir () in
  let _, traces = traced m (fun () -> Manager.extract m ~name:"lb" (Nfl.Parser.program src')) in
  check_statuses "semantic edit recomputes everything" (all_with_status "miss") traces

let test_param_change_dirty_suffix () =
  with_dir @@ fun dir ->
  let _, p = corpus_nf "balance" in
  ignore (Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"balance" p);
  (* Exploration parameters enter the explore fingerprint: changing the
     loop bound dirties explore and refine only — canonicalize,
     classify and slice still load from disk. *)
  let config =
    { Symexec.Explore.default_config with Symexec.Explore.loop_bound = 3 }
  in
  let m = Manager.create ~cache_dir:dir () in
  let _, traces = traced m (fun () -> Manager.extract m ~config ~name:"balance" p) in
  check_statuses "dirty suffix only"
    [
      ("canonicalize", "disk-hit");
      ("classify", "disk-hit");
      ("slice", "disk-hit");
      ("explore", "miss");
      ("refine", "miss");
    ]
    traces

(* ------------------------------------------------------------------ *)
(* Corruption and staleness                                           *)
(* ------------------------------------------------------------------ *)

let corrupt_artifacts dir ~pass f =
  let hits = ref 0 in
  Array.iter
    (fun file ->
      if
        String.length file > String.length pass
        && String.sub file 0 (String.length pass + 1) = pass ^ "-"
      then begin
        incr hits;
        f (dir / file)
      end)
    (Sys.readdir dir);
  Alcotest.(check bool) ("some " ^ pass ^ " artifact to corrupt") true (!hits > 0)

let test_corrupted_entry_recomputed () =
  with_dir @@ fun dir ->
  let _, p = corpus_nf "lb" in
  let cold = Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"lb" p in
  (* Bit rot in the payload: the header digest catches it. *)
  corrupt_artifacts dir ~pass:"explore" (fun path ->
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "garbage tail";
      close_out oc);
  (* Structural rot in a payload that still matches its digest: the
     decoder rejects it. *)
  corrupt_artifacts dir ~pass:"refine" (fun path ->
      let ic = open_in_bin path in
      let header = input_line ic in
      close_in ic;
      ignore header;
      let payload = "(nfactor-model (version 99) broken" in
      let oc = open_out_bin path in
      Printf.fprintf oc "nfactor-artifact-v1 refine %s %s\n"
        (String.sub (Filename.chop_suffix (Filename.basename path) ".nfart")
           (String.length "refine-")
           32)
        (Digest.to_hex (Digest.string payload));
      output_string oc payload;
      close_out oc);
  let m = Manager.create ~cache_dir:dir () in
  let warm, traces = traced m (fun () -> Manager.extract m ~name:"lb" p) in
  check_statuses "corrupted entries recompute, clean ones hit"
    [
      ("canonicalize", "disk-hit");
      ("classify", "disk-hit");
      ("slice", "disk-hit");
      ("explore", "miss");
      ("refine", "miss");
    ]
    traces;
  Alcotest.(check string) "model identical after recovery"
    (Nfactor.Model_io.to_string cold.Nfactor.Extract.model)
    (Nfactor.Model_io.to_string warm.Nfactor.Extract.model)

let test_stale_header_rejected () =
  with_dir @@ fun dir ->
  let _, p = corpus_nf "balance" in
  ignore (Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"balance" p);
  (* Rename one artifact onto another's key: the embedded pass +
     fingerprint header no longer matches the file name, so the load
     is refused even though the payload digest is intact. *)
  let canon_file = ref None and classes_file = ref None in
  corrupt_artifacts dir ~pass:"canonicalize" (fun path -> canon_file := Some path);
  corrupt_artifacts dir ~pass:"classify" (fun path -> classes_file := Some path);
  let canon_file = Option.get !canon_file and classes_file = Option.get !classes_file in
  let content =
    let ic = open_in_bin canon_file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic; s
  in
  let oc = open_out_bin classes_file in
  output_string oc content;
  close_out oc;
  let m = Manager.create ~cache_dir:dir () in
  let _, traces = traced m (fun () -> Manager.extract m ~name:"balance" p) in
  check_statuses "stale entry recomputes; its dependents were keyed independently"
    [
      ("canonicalize", "disk-hit");
      ("classify", "miss");
      ("slice", "disk-hit");
      ("explore", "disk-hit");
      ("refine", "disk-hit");
    ]
    traces

(* ------------------------------------------------------------------ *)
(* Solver memo threading                                              *)
(* ------------------------------------------------------------------ *)

let test_solver_memo_shared () =
  let m = Manager.create () in
  let _, p = corpus_nf "balance" in
  let ex = Manager.extract m ~name:"balance" p in
  Alcotest.(check bool) "result carries the manager memo" true
    (ex.Nfactor.Extract.solver_memo == Manager.solver_memo m);
  (* The exploration of the unsliced original re-decides the slice's
     branch conditions: with the shared memo those checks hit. *)
  let _, stats = Nfactor.Report.explore_original ~memo:ex.Nfactor.Extract.solver_memo ex in
  Alcotest.(check bool) "original exploration reuses verdicts" true
    (stats.Symexec.Explore.solver_cache_hits > 0)

(* A warm run never explores, so the shared memo stays useful for
   *subsequent* explorations (slice↔original reuse by construction). *)
let test_warm_memo_still_works () =
  with_dir @@ fun dir ->
  let _, p = corpus_nf "balance" in
  ignore (Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"balance" p);
  let m = Manager.create ~cache_dir:dir () in
  let ex = Manager.extract m ~name:"balance" p in
  let _, s1 = Nfactor.Report.explore_slice ~memo:ex.Nfactor.Extract.solver_memo ex in
  let _, s2 = Nfactor.Report.explore_original ~memo:ex.Nfactor.Extract.solver_memo ex in
  Alcotest.(check bool) "second exploration hits the first's verdicts" true
    (s2.Symexec.Explore.solver_cache_hits > 0);
  Alcotest.(check int) "slice re-exploration finds the recorded paths"
    ex.Nfactor.Extract.stats.Symexec.Explore.paths s1.Symexec.Explore.paths

(* ------------------------------------------------------------------ *)
(* Compile pass                                                       *)
(* ------------------------------------------------------------------ *)

let test_plan_agrees_with_interpreter () =
  with_dir @@ fun dir ->
  let _, p = corpus_nf "portknock" in
  ignore (Manager.extract (Manager.create ~cache_dir:dir ()) ~name:"portknock" p);
  let m = Manager.create ~cache_dir:dir () in
  let ex = Manager.extract m ~name:"portknock" p in
  let plan = Manager.plan m ex in
  let store = Nfactor.Model_interp.initial_store ex in
  let pkts = Packet.Traffic.random_stream ~seed:5 ~n:500 () in
  let _, ref_out = Nfactor.Model_interp.run ex.Nfactor.Extract.model ~store ~pkts in
  let eng = Nfactor_runtime.Engine.create plan ~store in
  let outs = Nfactor_runtime.Engine.run_batch eng (Array.of_list pkts) in
  Alcotest.(check bool) "engine == interpreter on warm-loaded model" true
    (List.for_all2
       (fun r (o : Nfactor_runtime.Engine.outcome) ->
         List.length r = List.length o.Nfactor_runtime.Engine.outputs
         && List.for_all2 Packet.Pkt.equal r o.Nfactor_runtime.Engine.outputs)
       ref_out (Array.to_list outs))

let suite =
  [
    Alcotest.test_case "pipeline == Extract.run (corpus)" `Quick test_pipeline_equals_extract;
    Alcotest.test_case "warm re-run identical (corpus)" `Quick test_warm_rerun_identical;
    Alcotest.test_case "warm extraction usable" `Quick test_warm_extraction_usable;
    Alcotest.test_case "in-memory dedup" `Quick test_mem_dedup;
    Alcotest.test_case "fingerprint stability" `Quick test_fingerprint_stable;
    Alcotest.test_case "comment edit hits everywhere" `Quick test_comment_edit_hits_everywhere;
    Alcotest.test_case "cosmetic edit hits from classify" `Quick test_cosmetic_edit_hits_from_classify;
    Alcotest.test_case "semantic edit recomputes" `Quick test_semantic_edit_recomputes;
    Alcotest.test_case "param change dirties the suffix" `Quick test_param_change_dirty_suffix;
    Alcotest.test_case "corrupted entries recomputed" `Quick test_corrupted_entry_recomputed;
    Alcotest.test_case "stale header rejected" `Quick test_stale_header_rejected;
    Alcotest.test_case "solver memo shared" `Quick test_solver_memo_shared;
    Alcotest.test_case "warm memo still works" `Quick test_warm_memo_still_works;
    Alcotest.test_case "plan pass on warm model" `Quick test_plan_agrees_with_interpreter;
  ]
