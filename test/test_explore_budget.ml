(* Exploration budgets and the incremental/memoizing solver layer:
   loop-bound truncation, prompt [max_paths] overflow, exact solver-call
   accounting, cache-hit behavior on repeated sub-conditions, and the
   write-order of concrete-dictionary lifting. *)

open Symexec
module Smap = Explore.Smap

let parse_main src = (Nfl.Parser.program src).Nfl.Ast.main

let env_with bindings =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty bindings

let sym_pkt_env extra = env_with (("pkt", Explore.sym_pkt "pkt") :: extra)

(* Eight independent bit tests: 2^8 feasible paths. *)
let wide_block ?(tail = "") () =
  let conds =
    String.concat " "
      (List.init 8 (fun i -> Printf.sprintf "if ((pkt.ip_len & %d) != 0) { x = %d; }" (1 lsl i) i))
  in
  parse_main ("main { x = 0; " ^ conds ^ " " ^ tail ^ " send(pkt); }")

(* ----------------------------------------------------------------- *)
(* Loop-bound truncation                                             *)
(* ----------------------------------------------------------------- *)

let test_loop_bound_truncation () =
  let b = parse_main "main { i = 0; while (i < pkt.ip_len) { i = i + 1; } send(pkt); }" in
  let paths, stats =
    Explore.block
      ~config:{ Explore.default_config with Explore.loop_bound = 2 }
      ~env:(sym_pkt_env []) b
  in
  Alcotest.(check bool) "truncated recorded" true (stats.Explore.truncated_paths >= 1);
  Alcotest.(check bool) "not overflowed" false stats.Explore.overflowed;
  (* Exits after 0, 1, 2 iterations plus the truncated continuation. *)
  Alcotest.(check bool) "bounded path count" true (List.length paths <= 4);
  let truncated = List.filter (fun (p : Explore.path) -> p.Explore.truncated) paths in
  Alcotest.(check int) "truncated paths returned, not dropped"
    stats.Explore.truncated_paths (List.length truncated)

(* ----------------------------------------------------------------- *)
(* max_paths overflow                                                 *)
(* ----------------------------------------------------------------- *)

let test_overflow_stops_promptly () =
  let _, stats =
    Explore.block
      ~config:{ Explore.default_config with Explore.max_paths = 10 }
      ~env:(sym_pkt_env []) (wide_block ())
  in
  Alcotest.(check bool) "overflowed" true stats.Explore.overflowed;
  Alcotest.(check bool) "within budget" true (stats.Explore.paths <= 10);
  Alcotest.(check bool) "in-flight path recorded as truncated" true
    (stats.Explore.truncated_paths >= 1)

let test_overflow_not_swallowed_by_fork_handlers () =
  (* A forking loop as the last statement: overflow raised inside it
     must unwind past the loop's and the ifs' fork handlers without
     sibling branches finishing more paths past the budget. *)
  let b = wide_block ~tail:"i = 0; while (i < pkt.ip_len) { i = i + 1; }" () in
  let _, stats =
    Explore.block
      ~config:{ Explore.default_config with Explore.max_paths = 6 }
      ~env:(sym_pkt_env []) b
  in
  Alcotest.(check bool) "overflowed" true stats.Explore.overflowed;
  Alcotest.(check bool) "hard cap respected" true (stats.Explore.paths <= 6)

let test_no_overflow_under_budget () =
  let b = parse_main "main { if (pkt.dport == 80) { send(pkt); } }" in
  let paths, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  Alcotest.(check bool) "no overflow" false stats.Explore.overflowed;
  Alcotest.(check int) "no truncation" 0 stats.Explore.truncated_paths

(* ----------------------------------------------------------------- *)
(* Solver-call accounting                                             *)
(* ----------------------------------------------------------------- *)

let test_constant_fold_zero_calls () =
  let b = parse_main "main { x = 5; if (x == 5) { send(pkt); } else { drop(); } }" in
  let paths, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "one path" 1 (List.length paths);
  Alcotest.(check int) "no solver consultation" 0 stats.Explore.decides;
  Alcotest.(check int) "no solver calls" 0 stats.Explore.solver_calls

let test_fork_costs_two_calls () =
  let b = parse_main "main { if (pkt.dport == 80) { send(pkt); } }" in
  let _, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "one decision" 1 stats.Explore.decides;
  Alcotest.(check int) "two calls" 2 stats.Explore.solver_calls;
  Alcotest.(check int) "one fork" 1 stats.Explore.forks

let test_short_circuit_one_call () =
  (* Inner true-side is refutable under the outer pc: the SAT invariant
     (¬sat_t ⇒ sat_f) answers the false side without a second call. *)
  let b =
    parse_main
      "main { if (pkt.dport == 80) { if (pkt.dport == 81) { drop(); } else { send(pkt); } } }"
  in
  let _, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "two decisions" 2 stats.Explore.decides;
  (* Pre-change accounting charged 2 per decision = 4. *)
  Alcotest.(check int) "three actual calls" 3 stats.Explore.solver_calls;
  Alcotest.(check int) "one fork" 1 stats.Explore.forks

let test_repeated_condition_hits_cache () =
  (* The inner repetition of the outer condition is answered entirely
     from the context: subsumption for the true side, the canonical
     negation for the false side. *)
  let b =
    parse_main
      "main { if (pkt.dport == 80) { if (pkt.dport == 80) { send(pkt); } else { drop(); } } }"
  in
  let paths, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  Alcotest.(check int) "two decisions" 2 stats.Explore.decides;
  Alcotest.(check int) "only the outer fork pays" 2 stats.Explore.solver_calls;
  Alcotest.(check bool) "cache hits recorded" true (stats.Explore.solver_cache_hits >= 2)

let test_shared_memo_across_explorations () =
  let b = wide_block () in
  let memo = Solver.memo_create () in
  let paths1, stats1 = Explore.block ~memo ~env:(sym_pkt_env []) b in
  let paths2, stats2 = Explore.block ~memo ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "same path census" (List.length paths1) (List.length paths2);
  Alcotest.(check bool) "first run pays" true (stats1.Explore.solver_calls > 0);
  Alcotest.(check int) "second run fully cached" 0 stats2.Explore.solver_calls;
  Alcotest.(check bool) "second run hits" true (stats2.Explore.solver_cache_hits > 0);
  (* Per-exploration deltas, not cumulative cache totals. *)
  Alcotest.(check int) "delta misses" 0 stats2.Explore.solver_cache_misses

let test_fork_depth_histogram () =
  let b =
    parse_main
      "main { if (pkt.dport == 80) { if (pkt.sport == 1) { send(pkt); } } send(pkt); }"
  in
  let _, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "outer fork at depth 0" 1
    (Option.value ~default:0 (Explore.Imap.find_opt 0 stats.Explore.fork_depths));
  Alcotest.(check int) "inner fork at depth 1" 1
    (Option.value ~default:0 (Explore.Imap.find_opt 1 stats.Explore.fork_depths));
  Alcotest.(check int) "max depth" 1 stats.Explore.max_fork_depth

(* ----------------------------------------------------------------- *)
(* Solver context unit behavior                                       *)
(* ----------------------------------------------------------------- *)

let test_ctx_push_pop () =
  let x = Sexpr.sym "x" in
  let eq n = Solver.lit (Sexpr.mk_bin Nfl.Ast.Eq x (Sexpr.int n)) true in
  let c = Solver.Ctx.create () in
  Solver.Ctx.push c (eq 1);
  Alcotest.(check int) "depth" 1 (Solver.Ctx.depth c);
  Alcotest.(check bool) "x=2 refuted incrementally" true
    (Solver.Ctx.check_extended c (eq 2) = Solver.Unsat);
  Alcotest.(check bool) "x=1 subsumed" true (Solver.Ctx.check_extended c (eq 1) = Solver.Sat);
  Alcotest.(check bool) "¬(x=1) contradicts the stack" true
    (Solver.Ctx.check_extended c (Solver.lit (Sexpr.mk_bin Nfl.Ast.Eq x (Sexpr.int 1)) false)
    = Solver.Unsat);
  Solver.Ctx.pop c;
  Alcotest.(check int) "depth restored" 0 (Solver.Ctx.depth c);
  Alcotest.(check bool) "x=2 feasible after pop" true
    (Solver.Ctx.check_extended c (eq 2) = Solver.Sat)

let test_ctx_matches_check () =
  (* The incremental verdict agrees with the from-scratch procedure on
     conjunction-only path conditions. *)
  let x = Sexpr.sym "x" and y = Sexpr.sym "y" in
  let lits =
    [
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Ge x (Sexpr.int 10)) true;
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Eq y x) true;
    ]
  in
  let probes =
    [
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Lt y (Sexpr.int 5)) true;
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Eq y (Sexpr.int 12)) true;
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Le x (Sexpr.int 9)) true;
    ]
  in
  let c = Solver.Ctx.create () in
  List.iter (Solver.Ctx.push c) lits;
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "agrees on %a" Solver.pp_literal p)
        true
        (Solver.Ctx.check_extended c p = Solver.check (lits @ [ p ])))
    probes

(* ----------------------------------------------------------------- *)
(* Concrete-dictionary lifting preserves write precedence             *)
(* ----------------------------------------------------------------- *)

let test_dict_lift_preserves_order () =
  (* Concrete lookups take the first binding; the lift must agree. *)
  let dup = Value.Dict [ (Value.Int 1, Value.Int 10); (Value.Int 1, Value.Int 20) ] in
  Alcotest.(check bool) "concrete lookup: first binding" true
    (Value.equal (Value.index dup (Value.Int 1)) (Value.Int 10));
  match Explore.sval_of_value dup with
  | Explore.Dictv d ->
      let read = Sexpr.mk_dget d (Sexpr.int 1) in
      Alcotest.(check bool) "symbolic read: same binding" true
        (Sexpr.equal read (Sexpr.int 10))
  | _ -> Alcotest.fail "Dictv expected"

let suite =
  [
    Alcotest.test_case "loop bound truncation" `Quick test_loop_bound_truncation;
    Alcotest.test_case "overflow stops promptly" `Quick test_overflow_stops_promptly;
    Alcotest.test_case "overflow unwinds fork handlers" `Quick
      test_overflow_not_swallowed_by_fork_handlers;
    Alcotest.test_case "no overflow under budget" `Quick test_no_overflow_under_budget;
    Alcotest.test_case "constant fold: zero calls" `Quick test_constant_fold_zero_calls;
    Alcotest.test_case "fork: two calls" `Quick test_fork_costs_two_calls;
    Alcotest.test_case "short-circuit: one call" `Quick test_short_circuit_one_call;
    Alcotest.test_case "repeated condition hits cache" `Quick test_repeated_condition_hits_cache;
    Alcotest.test_case "shared memo across explorations" `Quick
      test_shared_memo_across_explorations;
    Alcotest.test_case "fork depth histogram" `Quick test_fork_depth_histogram;
    Alcotest.test_case "ctx push/pop" `Quick test_ctx_push_pop;
    Alcotest.test_case "ctx matches check" `Quick test_ctx_matches_check;
    Alcotest.test_case "dict lift preserves order" `Quick test_dict_lift_preserves_order;
  ]
