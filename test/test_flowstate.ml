(* The mutable flow-state store: snapshot round-trips, Unresolved
   parity with the reference evaluator, and the capacity bound's LRU
   eviction discipline. *)

open Symexec
open Nfactor_runtime

let smap_of kvs =
  List.fold_left
    (fun acc (k, v) -> Nfactor.Model_interp.Smap.add k v acc)
    Nfactor.Model_interp.Smap.empty kvs

let base_store =
  smap_of
    [
      ("mode", Value.Int 1);
      ("greeting", Value.Str "hi");
      ( "tbl",
        Value.Dict [ (Value.Int 1, Value.Str "a"); (Value.Int 2, Value.Str "b") ] );
    ]

let value = Alcotest.testable Value.pp Value.equal

let test_snapshot_roundtrip () =
  let fs = Flowstate.create base_store in
  Alcotest.(check bool) "snapshot == source store" true
    (Nfactor.Model_interp.Smap.equal Value.equal base_store (Flowstate.snapshot fs))

let test_reads () =
  let fs = Flowstate.create base_store in
  Alcotest.check value "scalar" (Value.Int 1) (Flowstate.read fs "mode");
  Alcotest.check value "table materializes sorted"
    (Value.Dict [ (Value.Int 1, Value.Str "a"); (Value.Int 2, Value.Str "b") ])
    (Flowstate.read fs "tbl");
  Alcotest.(check bool) "mem hit" true (Flowstate.table_mem fs "tbl" (Value.Int 2));
  Alcotest.(check bool) "mem miss" false (Flowstate.table_mem fs "tbl" (Value.Int 9));
  Alcotest.(check (option value)) "find" (Some (Value.Str "a"))
    (Flowstate.table_find fs "tbl" (Value.Int 1))

let test_unresolved () =
  let fs = Flowstate.create base_store in
  Alcotest.check_raises "missing name" (Nfactor.Model_interp.Unresolved "nope") (fun () ->
      ignore (Flowstate.read fs "nope"));
  Alcotest.check_raises "scalar as dict" (Nfactor.Model_interp.Unresolved "dict mode")
    (fun () -> ignore (Flowstate.handle fs "mode"));
  Alcotest.check_raises "missing dict" (Nfactor.Model_interp.Unresolved "dict nope")
    (fun () -> ignore (Flowstate.handle fs "nope"))

let test_writes () =
  let fs = Flowstate.create base_store in
  Flowstate.set_scalar fs "mode" (Value.Int 7);
  Alcotest.check value "scalar overwrite" (Value.Int 7) (Flowstate.read fs "mode");
  Flowstate.table_set fs "tbl" (Value.Int 3) (Value.Str "c");
  Flowstate.table_remove fs "tbl" (Value.Int 1);
  Alcotest.check value "table after set/remove"
    (Value.Dict [ (Value.Int 2, Value.Str "b"); (Value.Int 3, Value.Str "c") ])
    (Flowstate.read fs "tbl");
  (* assigning a Dict value rebuilds the table wholesale *)
  Flowstate.set_scalar fs "tbl" (Value.Dict [ (Value.Int 9, Value.Int 0) ]);
  Alcotest.(check int) "rebuilt table" 1 (Flowstate.table_size fs "tbl")

let test_capacity_eviction () =
  let fs = Flowstate.create ~capacity:2 (smap_of [ ("t", Value.Dict []) ]) in
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 1) (Value.Str "one");
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 2) (Value.Str "two");
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 3) (Value.Str "three");
  Alcotest.(check int) "size stays at capacity" 2 (Flowstate.table_size fs "t");
  Alcotest.(check int) "one eviction" 1 (Flowstate.evictions fs);
  Alcotest.(check bool) "oldest key evicted" false (Flowstate.table_mem fs "t" (Value.Int 1));
  Alcotest.(check bool) "recent keys survive" true
    (Flowstate.table_mem fs "t" (Value.Int 2) && Flowstate.table_mem fs "t" (Value.Int 3))

let test_lru_touch () =
  let fs = Flowstate.create ~capacity:2 (smap_of [ ("t", Value.Dict []) ]) in
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 1) (Value.Str "one");
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 2) (Value.Str "two");
  (* reading key 1 refreshes its recency, so key 2 is now the LRU *)
  Flowstate.bump_clock fs;
  ignore (Flowstate.table_find fs "t" (Value.Int 1));
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 3) (Value.Str "three");
  Alcotest.(check bool) "touched key survives" true (Flowstate.table_mem fs "t" (Value.Int 1));
  Alcotest.(check bool) "untouched key evicted" false (Flowstate.table_mem fs "t" (Value.Int 2))

let test_eviction_tiebreak () =
  (* both keys inserted in the same clock tick: the smaller one goes,
     independent of hash-table layout *)
  let fs = Flowstate.create ~capacity:2 (smap_of [ ("t", Value.Dict []) ]) in
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 42) (Value.Str "a");
  Flowstate.table_set fs "t" (Value.Int 7) (Value.Str "b");
  Flowstate.table_set fs "t" (Value.Int 99) (Value.Str "c");
  Alcotest.(check bool) "smaller key evicted" false (Flowstate.table_mem fs "t" (Value.Int 7));
  Alcotest.(check bool) "larger key kept" true (Flowstate.table_mem fs "t" (Value.Int 42))

let test_update_refreshes_no_eviction () =
  let fs = Flowstate.create ~capacity:2 (smap_of [ ("t", Value.Dict []) ]) in
  Flowstate.table_set fs "t" (Value.Int 1) (Value.Str "one");
  Flowstate.table_set fs "t" (Value.Int 2) (Value.Str "two");
  (* overwriting an existing key must not trigger eviction *)
  Flowstate.table_set fs "t" (Value.Int 1) (Value.Str "uno");
  Alcotest.(check int) "no eviction on update" 0 (Flowstate.evictions fs);
  Alcotest.(check (option value)) "updated in place" (Some (Value.Str "uno"))
    (Flowstate.table_find fs "t" (Value.Int 1))

(* Regression for the clock-stamping fix: keys written through a
   whole-dict overwrite carry the overwrite-time clock (the mli's
   "as recent as any other write"), so recency from that point on is
   driven purely by touches — an untouched rebuilt key is evicted
   before a touched one, never the other way around. *)
let test_overwrite_stamps_recency () =
  let fs = Flowstate.create ~capacity:2 (smap_of [ ("t", Value.Dict []) ]) in
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 1) (Value.Str "old");
  Flowstate.bump_clock fs;
  Flowstate.set_scalar fs "t"
    (Value.Dict [ (Value.Int 10, Value.Str "a"); (Value.Int 11, Value.Str "b") ]);
  Alcotest.(check int) "rebuild replaces the table" 2 (Flowstate.table_size fs "t");
  Flowstate.bump_clock fs;
  ignore (Flowstate.table_find fs "t" (Value.Int 11));
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 12) (Value.Str "c");
  Alcotest.(check bool) "untouched rebuilt key evicted" false
    (Flowstate.table_mem fs "t" (Value.Int 10));
  Alcotest.(check bool) "touched rebuilt key survives" true
    (Flowstate.table_mem fs "t" (Value.Int 11));
  (* rebuilt keys within one overwrite share a stamp: eviction among
     them falls back to the deterministic smaller-key tie-break *)
  let fs2 = Flowstate.create ~capacity:2 (smap_of [ ("t", Value.Dict []) ]) in
  Flowstate.bump_clock fs2;
  Flowstate.set_scalar fs2 "t"
    (Value.Dict [ (Value.Int 20, Value.Str "a"); (Value.Int 21, Value.Str "b") ]);
  Flowstate.bump_clock fs2;
  Flowstate.table_set fs2 "t" (Value.Int 5) (Value.Str "c");
  Alcotest.(check bool) "tie-break evicts the smaller rebuilt key" false
    (Flowstate.table_mem fs2 "t" (Value.Int 20))

(* [handle_get] is the allocation-free twin of [handle_find]: same
   values, [Not_found] exactly where [handle_find] is [None], and the
   same recency stamping (a got key must not be the LRU victim). *)
let test_handle_get () =
  let fs = Flowstate.create ~capacity:2 (smap_of [ ("t", Value.Dict []) ]) in
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 1) (Value.Str "one");
  Flowstate.table_set fs "t" (Value.Int 2) (Value.Str "two");
  let h = Flowstate.handle fs "t" in
  Alcotest.check value "get hit" (Value.Str "one") (Flowstate.handle_get fs h (Value.Int 1));
  Alcotest.check_raises "get miss" Stdlib.Not_found (fun () ->
      ignore (Flowstate.handle_get fs h (Value.Int 9)));
  Flowstate.bump_clock fs;
  ignore (Flowstate.handle_get fs h (Value.Int 1));
  Flowstate.bump_clock fs;
  Flowstate.table_set fs "t" (Value.Int 3) (Value.Str "three");
  Alcotest.(check bool) "got key survives eviction" true
    (Flowstate.table_mem fs "t" (Value.Int 1));
  Alcotest.(check bool) "un-got key evicted" false (Flowstate.table_mem fs "t" (Value.Int 2))

let suite =
  [
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "reads" `Quick test_reads;
    Alcotest.test_case "unresolved parity" `Quick test_unresolved;
    Alcotest.test_case "writes" `Quick test_writes;
    Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
    Alcotest.test_case "lru touch" `Quick test_lru_touch;
    Alcotest.test_case "eviction tie-break" `Quick test_eviction_tiebreak;
    Alcotest.test_case "update does not evict" `Quick test_update_refreshes_no_eviction;
    Alcotest.test_case "dict overwrite stamps recency" `Quick test_overwrite_stamps_recency;
    Alcotest.test_case "handle_get == handle_find" `Quick test_handle_get;
  ]
