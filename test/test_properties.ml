(* Cross-cutting property-based tests: randomized programs and inputs
   checking the semantic contracts between the analyses.

   The generators build NFL programs that are well-formed by
   construction (variables initialized before use, no division), so
   any failure is a real property violation, not a generator bug. *)

open Symexec

let vars = [ "a"; "b"; "c"; "d" ]

(* Random straight-line/branching packet program:
   - globals initialize every scratch variable and a state dict;
   - the loop body mixes scalar arithmetic, packet-field reads and
     writes, dictionary updates, log noise and conditional sends. *)
let gen_program rng =
  let stmt i =
    match Packet.Rng.int rng 8 with
    | 0 ->
        Printf.sprintf "%s = %s + %d;" (Packet.Rng.pick rng vars) (Packet.Rng.pick rng vars)
          (Packet.Rng.int rng 100)
    | 1 -> Printf.sprintf "%s = pkt.%s;" (Packet.Rng.pick rng vars)
             (Packet.Rng.pick rng [ "dport"; "sport"; "ip_len"; "ip_ttl" ])
    | 2 -> Printf.sprintf "pkt.%s = %s;" (Packet.Rng.pick rng [ "dport"; "ip_ttl" ])
             (Packet.Rng.pick rng vars)
    | 3 -> Printf.sprintf "logc = logc + %s;" (Packet.Rng.pick rng vars)
    | 4 -> Printf.sprintf "tbl[%s] = %s;" (Packet.Rng.pick rng vars) (Packet.Rng.pick rng vars)
    | 5 ->
        Printf.sprintf "if (%s < %d) { %s = %s + 1; }" (Packet.Rng.pick rng vars)
          (Packet.Rng.int rng 200) (Packet.Rng.pick rng vars) (Packet.Rng.pick rng vars)
    | 6 -> Printf.sprintf "log(\"x%d\", %s);" i (Packet.Rng.pick rng vars)
    | _ ->
        let key = Packet.Rng.pick rng vars in
        Printf.sprintf "if (%s in tbl) { %s = tbl[%s]; }" key (Packet.Rng.pick rng vars) key
  in
  let n = 4 + Packet.Rng.int rng 10 in
  let body = String.concat "\n      " (List.init n stmt) in
  let send_guard =
    match Packet.Rng.int rng 3 with
    | 0 -> "send(pkt);"
    | 1 -> Printf.sprintf "if (%s < %d) { send(pkt); }" (Packet.Rng.pick rng vars) (Packet.Rng.int rng 300)
    | _ -> Printf.sprintf "if (pkt.dport == %d) { send(pkt); } else { drop(); }" (Packet.Rng.int rng 100)
  in
  Printf.sprintf
    {|a = 0; b = 1; c = 2; d = 3;
      logc = 0;
      tbl = {};
      main {
        while (true) {
          pkt = recv();
          %s
          %s
        }
      }|}
    body send_guard

let random_packets seed n = Packet.Traffic.random_stream ~seed ~n ()

(* Property 1: the residual program over the packet+state slice sends
   exactly the packets the original sends. *)
let prop_slice_preserves_outputs =
  QCheck.Test.make ~name:"property: slice union preserves outputs" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let src = gen_program rng in
      let p = Nfl.Parser.program src in
      let ex = Nfactor.Extract.run ~name:"rand" p in
      let residual =
        {
          ex.Nfactor.Extract.program with
          Nfl.Ast.main =
            Slicing.Slice.restrict_block ex.Nfactor.Extract.union_slice
              ex.Nfactor.Extract.program.Nfl.Ast.main;
        }
      in
      let pkts = random_packets (seed + 1) 40 in
      let orig = Interp.run ~max_steps:1_000_000 ex.Nfactor.Extract.program ~inputs:pkts in
      let slim = Interp.run ~max_steps:1_000_000 residual ~inputs:pkts in
      List.length orig.Interp.outputs = List.length slim.Interp.outputs
      && List.for_all2 Packet.Pkt.equal orig.Interp.outputs slim.Interp.outputs)

(* Property 2: the extracted model agrees with the program on random
   packets (the accuracy experiment as a universally quantified law). *)
let prop_model_agrees =
  QCheck.Test.make ~name:"property: extracted model == program" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let src = gen_program rng in
      let p = Nfl.Parser.program src in
      let ex = Nfactor.Extract.run ~name:"rand" p in
      let v = Nfactor.Equiv.differential ex ~pkts:(random_packets (seed + 2) 50) in
      Nfactor.Equiv.ok v)

(* Property 3: concrete symbolic execution — exploring with an all-
   concrete environment yields exactly one path whose sends match the
   interpreter. *)
let prop_concrete_exploration_single_path =
  QCheck.Test.make ~name:"property: concrete exploration == interpretation" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let src = gen_program rng in
      let p = Nfl.Parser.program src in
      let _, body, pkt_var = Nfl.Transform.packet_loop p in
      let body_no_recv =
        List.filter (fun s -> not (Nfl.Builtins.is_pkt_input_stmt s)) body
      in
      let store = Interp.initial_state p in
      let pkt = List.hd (random_packets (seed + 3) 1) in
      (* Interpreter side. *)
      let sent, _, _ = Interp.step_loop_body ~body ~store ~pkt_var ~pkt () in
      (* Symbolic side with concrete env. *)
      let env =
        Interp.Smap.fold
          (fun k v acc -> Explore.Smap.add k (Explore.sval_of_value v) acc)
          store Explore.Smap.empty
      in
      let env = Explore.Smap.add pkt_var (Explore.sval_of_value (Value.Pkt pkt)) env in
      let paths, stats = Explore.block ~env body_no_recv in
      stats.Explore.forks = 0
      && List.length paths = 1
      &&
      let path = List.hd paths in
      let symbolic_sends =
        List.map
          (fun snap ->
            List.fold_left
              (fun acc (f, e) ->
                match Sexpr.view e with
                | Sexpr.Const (Value.Int n) when Packet.Headers.is_int_field f ->
                    Packet.Pkt.set_int acc f n
                | Sexpr.Const (Value.Str s) when Packet.Headers.is_str_field f ->
                    Packet.Pkt.set_str acc f s
                | _ -> acc)
              pkt snap)
          path.Explore.sends
      in
      List.length sent = List.length symbolic_sends
      && List.for_all2 Packet.Pkt.equal sent symbolic_sends)

(* Property 4: solver anti-monotonicity — a satisfiable conjunction
   stays satisfiable when literals are removed. *)
let gen_literal rng =
  let x = Sexpr.sym (Packet.Rng.pick rng [ "x"; "y"; "z" ]) in
  let c = Sexpr.int (Packet.Rng.int rng 50) in
  let op = Packet.Rng.pick rng [ Nfl.Ast.Eq; Nfl.Ast.Ne; Nfl.Ast.Lt; Nfl.Ast.Le; Nfl.Ast.Gt; Nfl.Ast.Ge ] in
  Solver.lit (Sexpr.mk_bin op x c) (Packet.Rng.bool rng)

let prop_solver_monotone =
  QCheck.Test.make ~name:"property: solver unsat is monotone" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let lits = List.init (2 + Packet.Rng.int rng 6) (fun _ -> gen_literal rng) in
      match Solver.check lits with
      | Solver.Sat ->
          (* every prefix must also be Sat *)
          let rec prefixes = function [] -> [ [] ] | _ :: tl as l -> l :: prefixes tl in
          List.for_all (fun sub -> Solver.check sub = Solver.Sat) (prefixes lits)
      | Solver.Unsat -> true)

(* Property 5: solver concretization really satisfies the literals. *)
let prop_concretize_satisfies =
  QCheck.Test.make ~name:"property: concretize satisfies literals" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let lits = List.init (1 + Packet.Rng.int rng 5) (fun _ -> gen_literal rng) in
      match Solver.concretize lits with
      | None -> Solver.check lits = Solver.Unsat || true (* incomplete: None only on refutation *)
      | Some m ->
          let subst name =
            match Solver.Smap.find_opt name m with Some v -> Some v | None -> Some (Value.Int 0)
          in
          List.for_all
            (fun (l : Solver.literal) ->
              match Sexpr.view (Sexpr.subst subst l.Solver.atom) with
              | Sexpr.Const (Value.Bool b) -> b = l.Solver.positive
              | _ -> true (* unresolved: nothing to check *))
            lits)

(* Property 6: the model interpreter is a pure function of (store,
   packet). *)
let prop_model_step_deterministic =
  QCheck.Test.make ~name:"property: model step deterministic" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ex =
        Nfactor.Extract.run ~name:"lb" (Nfs.Lb.program ())
      in
      let store = Nfactor.Model_interp.initial_store ex in
      let pkt = List.hd (random_packets seed 1) in
      let a = Nfactor.Model_interp.step ex.Nfactor.Extract.model store pkt in
      let b = Nfactor.Model_interp.step ex.Nfactor.Extract.model store pkt in
      a.Nfactor.Model_interp.matched = b.Nfactor.Model_interp.matched
      && List.for_all2 Packet.Pkt.equal a.Nfactor.Model_interp.outputs b.Nfactor.Model_interp.outputs)

(* Property 7: pretty-print / parse round trip on whole random
   programs. *)
let prop_program_roundtrip =
  QCheck.Test.make ~name:"property: program print/parse roundtrip" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let src = gen_program rng in
      let p1 = Nfl.Parser.program src in
      let p2 = Nfl.Parser.program (Nfl.Pretty.program p1) in
      Nfl.Ast.stmt_count p1 = Nfl.Ast.stmt_count p2
      && Nfl.Pretty.program p1 = Nfl.Pretty.program p2)

(* Property 8: model entries are mutually exclusive — path conditions
   partition the input space, so for any (state, packet) at most one
   entry matches. Checked along a stateful trajectory. *)
let prop_entries_disjoint =
  QCheck.Test.make ~name:"property: model entries mutually exclusive" ~count:30
    QCheck.(pair (int_bound 8) (int_bound 1_000_000))
    (fun (nf_idx, seed) ->
      let entry = List.nth Nfs.Corpus.all (nf_idx mod List.length Nfs.Corpus.all) in
      let ex = Nfactor.Extract.run ~name:entry.Nfs.Corpus.name (entry.Nfs.Corpus.program ()) in
      let m = ex.Nfactor.Extract.model in
      let store = ref (Nfactor.Model_interp.initial_store ex) in
      List.for_all
        (fun pkt ->
          let matches =
            List.filter (Nfactor.Model_interp.entry_matches !store pkt) m.Nfactor.Model.entries
          in
          let r = Nfactor.Model_interp.step m !store pkt in
          store := r.Nfactor.Model_interp.store;
          List.length matches <= 1)
        (random_packets seed 60))

(* Property 9: the parser never crashes — malformed input raises only
   the documented exceptions. *)
let prop_parser_total =
  QCheck.Test.make ~name:"property: parser raises only documented errors" ~count:300
    QCheck.(string_gen_of_size (Gen.int_bound 80) Gen.printable)
    (fun junk ->
      match Nfl.Parser.program junk with
      | _ -> true
      | exception Nfl.Parser.Error _ -> true
      | exception Nfl.Lexer.Error _ -> true)

(* Property 10: lexer position monotonicity — token positions never go
   backwards. *)
let prop_lexer_positions_monotone =
  QCheck.Test.make ~name:"property: lexer positions monotone" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let src = gen_program rng in
      let toks = Nfl.Lexer.tokens src in
      let rec check = function
        | (_, (a : Nfl.Ast.pos)) :: ((_, (b : Nfl.Ast.pos)) :: _ as rest) ->
            (a.Nfl.Ast.line < b.Nfl.Ast.line
            || (a.Nfl.Ast.line = b.Nfl.Ast.line && a.Nfl.Ast.col <= b.Nfl.Ast.col))
            && check rest
        | _ -> true
      in
      check toks)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_slice_preserves_outputs;
      prop_model_agrees;
      prop_concrete_exploration_single_path;
      prop_solver_monotone;
      prop_concretize_satisfies;
      prop_model_step_deterministic;
      prop_program_roundtrip;
      prop_entries_disjoint;
      prop_parser_total;
      prop_lexer_positions_monotone;
    ]
