open Nfactor
open Symexec

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

let test_lb_model_shape () =
  let ex = extract_nf "lb" in
  let m = ex.Extract.model in
  Alcotest.(check (slist string compare)) "cfg vars"
    [ "ROUND_ROBIN"; "lb_ip"; "lb_port"; "mode"; "servers" ]
    m.Model.cfg_vars;
  Alcotest.(check (slist string compare)) "ois vars"
    [ "b2f_nat"; "cur_port"; "f2b_nat"; "rr_idx" ]
    m.Model.ois_vars;
  (* Five paths: new-flow RR, new-flow hash, existing flow, reverse
     known, reverse unknown. *)
  Alcotest.(check int) "five entries" 5 (Model.entry_count m)

let test_lb_slice_excludes_logs () =
  let ex = extract_nf "lb" in
  (* The union slice keeps state updates but drops the counters. *)
  Nfl.Ast.iter_program
    (fun s ->
      match s.Nfl.Ast.kind with
      | Nfl.Ast.Assign (Nfl.Ast.L_var v, _) when v = "pass_stat" || v = "drop_stat" ->
          Alcotest.(check bool) "log update not in union slice" false
            (List.mem s.Nfl.Ast.sid ex.Extract.union_slice)
      | _ -> ())
    ex.Extract.program;
  (* The state slice is non-empty and includes rr_idx updates. *)
  Alcotest.(check bool) "state slice nonempty" true (ex.Extract.state_slice <> [])

let test_lb_config_split () =
  (* Figure 6: the model splits into mode=RR and mode=HASH tables. *)
  let ex = extract_nf "lb" in
  let groups = Model.config_groups ex.Extract.model in
  let keys = List.map fst groups in
  Alcotest.(check bool) "at least two config groups" true (List.length keys >= 2);
  let flat = List.concat keys in
  Alcotest.(check bool) "mode appears in config conditions" true
    (List.exists (fun k -> Value.str_contains ~sub:"mode" k) flat)

let test_lb_rr_entry_updates_index () =
  let ex = extract_nf "lb" in
  (* Find the RR new-flow entry: state update on rr_idx. *)
  let rr_entries =
    List.filter
      (fun (e : Model.entry) ->
        List.exists (fun (v, _) -> v = "rr_idx") e.Model.state_update)
      ex.Extract.model.Model.entries
  in
  Alcotest.(check int) "one RR entry" 1 (List.length rr_entries);
  let e = List.hd rr_entries in
  (* Figure 6 row 1: state update is (idx+1) % N. *)
  (match List.assoc "rr_idx" e.Model.state_update with
  | Model.Set_scalar
      {
        Sexpr.node =
          Sexpr.Bin
            ( Nfl.Ast.Mod,
              { Sexpr.node = Sexpr.Bin (Nfl.Ast.Add, { Sexpr.node = Sexpr.Sym "rr_idx"; _ }, _); _ },
              _ );
        _;
      } -> ()
  | u -> Alcotest.failf "unexpected rr_idx update: %s" (Fmt.str "%a" Model.pp_state_update ("rr_idx", u)));
  (* It also installs both NAT mappings. *)
  Alcotest.(check bool) "f2b updated" true (List.mem_assoc "f2b_nat" e.Model.state_update);
  Alcotest.(check bool) "b2f updated" true (List.mem_assoc "b2f_nat" e.Model.state_update);
  (* And it forwards. *)
  (match e.Model.pkt_action with
  | Model.Forward [ _ ] -> ()
  | _ -> Alcotest.fail "RR entry must forward one packet")

let test_lb_drop_entry () =
  let ex = extract_nf "lb" in
  let drops =
    List.filter (fun (e : Model.entry) -> e.Model.pkt_action = Model.Drop) ex.Extract.model.Model.entries
  in
  (* Exactly one drop path: unknown reverse flow. *)
  Alcotest.(check int) "one drop entry" 1 (List.length drops);
  let e = List.hd drops in
  Alcotest.(check bool) "drop has negative state match" true
    (List.exists (fun (l : Solver.literal) -> not l.Solver.positive) e.Model.state_match);
  Alcotest.(check bool) "drop updates no state" true (e.Model.state_update = [])

let test_nat_model () =
  let ex = extract_nf "nat" in
  let m = ex.Extract.model in
  (* outbound-new, outbound-existing, inbound-known, inbound-unknown,
     not-for-nat = 5 *)
  Alcotest.(check int) "five entries" 5 (Model.entry_count m);
  Alcotest.(check (slist string compare)) "ois" [ "fwd_map"; "next_port"; "rev_map" ] m.Model.ois_vars;
  let forwards =
    List.filter (fun (e : Model.entry) -> e.Model.pkt_action <> Model.Drop) m.Model.entries
  in
  Alcotest.(check int) "three forwarding entries" 3 (List.length forwards)

let test_firewall_model () =
  let ex = extract_nf "firewall" in
  let m = ex.Extract.model in
  Alcotest.(check (slist string compare)) "ois" [ "conn_table" ] m.Model.ois_vars;
  Alcotest.(check bool) "stateful" true (Model.is_stateful m);
  (* Outbound entry installs a pinhole. *)
  let installs =
    List.filter (fun (e : Model.entry) -> e.Model.state_update <> []) m.Model.entries
  in
  Alcotest.(check bool) "pinhole installer exists" true (List.length installs >= 1)

let test_snort_model_stateless () =
  let ex = extract_nf "snort" in
  let m = ex.Extract.model in
  Alcotest.(check (list string)) "no ois vars" [] m.Model.ois_vars;
  (* A handful of decode paths, not hundreds. *)
  Alcotest.(check bool) "few entries" true (Model.entry_count m <= 8);
  Alcotest.(check bool) "no truncation" true (ex.Extract.stats.Explore.truncated_paths = 0);
  (* Slice is a small fraction of the program. *)
  let orig_stmts = Nfl.Ast.stmt_count ex.Extract.program in
  Alcotest.(check bool) "slice <= 15% of statements" true
    (List.length ex.Extract.union_slice * 100 <= 15 * orig_stmts)

let test_balance_model () =
  let ex = extract_nf "balance" in
  let m = ex.Extract.model in
  (* TCP state and backend tables are ois. *)
  List.iter
    (fun v -> Alcotest.(check bool) (v ^ " ois") true (List.mem v m.Model.ois_vars))
    [ "_tcp"; "_backend"; "idx" ];
  (* Entries exist for: SYN new conn (RR + hash configs), established
     data relay, teardown, drops. *)
  Alcotest.(check bool) "rich entry set" true (Model.entry_count m >= 6);
  (* Some entry forwards with a payload-carrying relay to a backend. *)
  let relays =
    List.filter
      (fun (e : Model.entry) ->
        match e.Model.pkt_action with
        | Model.Forward snaps ->
            List.exists (List.exists (fun (f, v) -> f = "ip_dst" && not (Sexpr.equal v (Sexpr.sym "pkt.ip_dst")))) snaps
        | Model.Drop -> false)
      m.Model.entries
  in
  Alcotest.(check bool) "backend relay entry" true (relays <> [])

let test_ratelimiter_model () =
  let ex = extract_nf "ratelimiter" in
  let m = ex.Extract.model in
  Alcotest.(check (list string)) "counts is the state" [ "counts" ] m.Model.ois_vars;
  (* exempt, under-limit-new, under-limit-existing, over-limit. *)
  Alcotest.(check bool) "at least 4 entries" true (Model.entry_count m >= 4)

let test_classify_derives_pkt_prefix () =
  (* The flow-atom test derives its field prefix from the classified
     packet variable rather than assuming the literal name "pkt". *)
  let cl = Extract.classify_literal ~pkt_var:"p" ~cfg_vars:[ "limit" ] ~ois_vars:[ "tbl" ] in
  let lit atom = Solver.lit atom true in
  Alcotest.(check bool) "p.dport is a flow atom" true
    (cl (lit (Sexpr.mk_bin Nfl.Ast.Eq (Sexpr.sym "p.dport") (Sexpr.int 80))) = Extract.L_flow);
  (* "pkt.*" is just another unknown symbol when the packet variable is p. *)
  Alcotest.(check bool) "pkt.dport is residual under pkt_var=p" true
    (cl (lit (Sexpr.mk_bin Nfl.Ast.Eq (Sexpr.sym "pkt.dport") (Sexpr.int 80))) = Extract.L_other);
  Alcotest.(check bool) "pure-config atom" true
    (cl (lit (Sexpr.mk_bin Nfl.Ast.Lt (Sexpr.sym "limit") (Sexpr.int 10))) = Extract.L_config);
  (* State beats flow even when the atom mentions packet fields. *)
  Alcotest.(check bool) "state priority" true
    (cl (lit (Sexpr.mk_mem (Sexpr.dict_base "tbl") (Sexpr.sym "p.ip_src"))) = Extract.L_state)

let test_memo_shared_slice_original () =
  (* Regression: the extraction's verdict cache keys on hash-consed
     term ids, so re-exploring the slice is answered entirely from the
     memo, and the unsliced original — which re-decides the slice's
     branch conditions — keeps hitting the same entries. *)
  let ex = extract_nf "lb" in
  let memo = ex.Extract.solver_memo in
  let _, slice_stats = Report.explore_slice ~memo ex in
  Alcotest.(check int) "slice re-exploration fully cached" 0
    slice_stats.Explore.solver_calls;
  Alcotest.(check bool) "slice re-exploration hits" true
    (slice_stats.Explore.solver_cache_hits > 0);
  let _, orig_stats = Report.explore_original ~memo ex in
  Alcotest.(check bool) "original exploration reuses slice verdicts" true
    (orig_stats.Explore.solver_cache_hits > 0)

let test_extraction_deterministic () =
  let a = extract_nf "lb" and b = extract_nf "lb" in
  Alcotest.(check string) "same rendered model"
    (Model.to_string a.Extract.model)
    (Model.to_string b.Extract.model)

let suite =
  [
    Alcotest.test_case "LB model shape" `Quick test_lb_model_shape;
    Alcotest.test_case "LB slice excludes logs" `Quick test_lb_slice_excludes_logs;
    Alcotest.test_case "LB config split (Fig 6)" `Quick test_lb_config_split;
    Alcotest.test_case "LB RR entry" `Quick test_lb_rr_entry_updates_index;
    Alcotest.test_case "LB drop entry" `Quick test_lb_drop_entry;
    Alcotest.test_case "NAT model" `Quick test_nat_model;
    Alcotest.test_case "firewall model" `Quick test_firewall_model;
    Alcotest.test_case "snort model stateless" `Quick test_snort_model_stateless;
    Alcotest.test_case "balance model" `Quick test_balance_model;
    Alcotest.test_case "ratelimiter model" `Quick test_ratelimiter_model;
    Alcotest.test_case "classify derives pkt prefix" `Quick test_classify_derives_pkt_prefix;
    Alcotest.test_case "memo shared slice/original" `Quick test_memo_shared_slice_original;
    Alcotest.test_case "extraction deterministic" `Quick test_extraction_deterministic;
  ]
