open Nfactor
open Symexec

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

(* Round trip: serialized + reparsed model renders identically. *)
let test_roundtrip_all_nfs () =
  List.iter
    (fun name ->
      let m = (extract_nf name).Extract.model in
      let m' = Model_io.of_string (Model_io.to_string m) in
      Alcotest.(check string) (name ^ " roundtrips") (Model.to_string m) (Model.to_string m'))
    Nfs.Corpus.names

(* The reparsed model is behaviourally identical, not just textually:
   drive both through the model interpreter. *)
let test_roundtrip_behaviour () =
  let ex = extract_nf "lb" in
  let m = ex.Extract.model in
  let m' = Model_io.of_string (Model_io.to_string m) in
  let store = Model_interp.initial_store ex in
  let pkts = Packet.Traffic.random_stream ~seed:31337 ~n:300 () in
  let _, out1 = Model_interp.run m ~store ~pkts in
  let _, out2 = Model_interp.run m' ~store ~pkts in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same outputs" true
        (List.length a = List.length b && List.for_all2 Packet.Pkt.equal a b))
    out1 out2

let test_sexp_atom_quoting () =
  (* Strings with spaces/specials survive. *)
  let v = Value.Str "GET /etc/passwd \"x\"\nend" in
  let s = Model_io.sexp_to_string (Model_io.sexp_of_value v) in
  let v' = Model_io.value_of_sexp (Model_io.parse_sexp s) in
  Alcotest.(check bool) "string roundtrip" true (Value.equal v v')

let test_value_roundtrip () =
  let cases =
    [
      Value.Int 42;
      Value.Int (-7);
      Value.Bool true;
      Value.Str "";
      Value.Tuple [ Value.Int 1; Value.Str "a" ];
      Value.List [ Value.Tuple [ Value.Int 1; Value.Int 2 ] ];
      Value.Dict [ (Value.Int 1, Value.Str "x"); (Value.Int 2, Value.Str "y") ];
    ]
  in
  List.iter
    (fun v ->
      let v' = Model_io.value_of_sexp (Model_io.parse_sexp (Model_io.sexp_to_string (Model_io.sexp_of_value v))) in
      Alcotest.(check bool) (Value.to_string v) true (Value.equal v v'))
    cases

let test_expr_roundtrip () =
  let d =
    { Sexpr.base = "tbl"; writes = [ (Sexpr.sym "k", Some (Sexpr.int 1)); (Sexpr.sym "q", None) ] }
  in
  let cases =
    [
      Sexpr.sym "pkt.dport";
      Sexpr.mk_bin Nfl.Ast.Add (Sexpr.sym "x") (Sexpr.int 3);
      Sexpr.mk_not (Sexpr.sym "b");
      Sexpr.mk_tuple [ Sexpr.sym "a"; Sexpr.int 2 ];
      Sexpr.mk_get (Sexpr.mk_list [ Sexpr.int 1; Sexpr.int 2 ]) (Sexpr.sym "i");
      Sexpr.mk_ufun "hash" [ Sexpr.sym "x" ];
      Sexpr.mk_mem d (Sexpr.sym "key");
      Sexpr.mk_dget d (Sexpr.mk_tuple [ Sexpr.sym "a"; Sexpr.sym "b" ]);
    ]
  in
  List.iter
    (fun e ->
      let e' = Model_io.expr_of_sexp (Model_io.parse_sexp (Model_io.sexp_to_string (Model_io.sexp_of_expr e))) in
      Alcotest.(check bool) (Sexpr.to_string e) true (Sexpr.equal e e'))
    cases

let test_v1_document_compat () =
  (* Version-1 entries predate the residual clause; they parse with an
     empty residual_match. *)
  let doc =
    "(nfactor-model (version 1) (name old) (pkt-var pkt) (cfg-vars) (ois-vars) \
     (entries (entry (config) (flow (+ (bin == (sym pkt.dport) (const (i 80))))) \
     (state) (action (drop)) (updates) (path 1 2) (truncated false))))"
  in
  let m = Model_io.of_string doc in
  Alcotest.(check int) "one entry" 1 (List.length m.Model.entries);
  let e = List.hd m.Model.entries in
  Alcotest.(check int) "empty residual" 0 (List.length e.Model.residual_match);
  Alcotest.(check int) "flow kept" 1 (List.length e.Model.flow_match)

let test_residual_roundtrip () =
  let e =
    {
      Model.config = [];
      flow_match = [];
      state_match = [];
      residual_match =
        [ Solver.lit (Sexpr.mk_ufun "crc" [ Sexpr.sym "x" ]) false ];
      pkt_action = Model.Drop;
      state_update = [];
      path_sids = [];
      truncated = false;
    }
  in
  let e' = Model_io.entry_of_sexp (Model_io.parse_sexp (Model_io.sexp_to_string (Model_io.sexp_of_entry e))) in
  match e'.Model.residual_match with
  | [ l ] ->
      Alcotest.(check bool) "polarity kept" false l.Solver.positive;
      Alcotest.(check bool) "atom re-interned to the same term" true
        (Sexpr.equal l.Solver.atom (Sexpr.mk_ufun "crc" [ Sexpr.sym "x" ]))
  | _ -> Alcotest.fail "one residual literal expected"

let test_parse_errors () =
  let fails s =
    match Model_io.parse_sexp s with
    | exception Model_io.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" s
  in
  fails "";
  fails "(";
  fails "(a))";
  fails "\"open";
  (match Model_io.of_string "(something-else)" with
  | exception Model_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "wrong document type accepted");
  match
    Model_io.of_string
      "(nfactor-model (version 99) (name x) (pkt-var p) (cfg-vars) (ois-vars) (entries))"
  with
  | exception Model_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "wrong version accepted"

let qcheck_sexp_roundtrip =
  (* Random nested sexps survive print/parse. *)
  let rec gen depth rng =
    if depth = 0 || Packet.Rng.int rng 3 = 0 then
      Model_io.Atom
        (Packet.Rng.pick rng [ "a"; "x1"; "with space"; "sym.bol"; ""; "\"q\""; "end\n" ])
    else
      Model_io.List (List.init (Packet.Rng.int rng 4) (fun _ -> gen (depth - 1) rng))
  in
  QCheck.Test.make ~name:"model_io: sexp print/parse roundtrip" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let s = gen 4 rng in
      Model_io.parse_sexp (Model_io.sexp_to_string s) = s)

let suite =
  [
    Alcotest.test_case "model roundtrip (all NFs)" `Quick test_roundtrip_all_nfs;
    Alcotest.test_case "behavioural roundtrip" `Quick test_roundtrip_behaviour;
    Alcotest.test_case "atom quoting" `Quick test_sexp_atom_quoting;
    Alcotest.test_case "value roundtrip" `Quick test_value_roundtrip;
    Alcotest.test_case "expr roundtrip" `Quick test_expr_roundtrip;
    Alcotest.test_case "v1 document compat" `Quick test_v1_document_compat;
    Alcotest.test_case "residual roundtrip" `Quick test_residual_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest qcheck_sexp_roundtrip;
  ]
