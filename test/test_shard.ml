(* The sharded dataplane (lib/runtime/shard + shardplan): sharding
   analysis on the corpus, flow-key hash properties, and N-shard
   differential exactness — outputs, merged final store and merged
   counters must equal a single engine fed the same stream — plus the
   RCU plan swap and the counted (allocation-free) batch variant. *)

open Symexec
open Nfactor_runtime

let extractions : (string, Nfactor.Extract.result) Hashtbl.t = Hashtbl.create 16

let extraction name =
  match Hashtbl.find_opt extractions name with
  | Some ex -> ex
  | None ->
      let e = Option.get (Nfs.Corpus.find name) in
      let ex = Nfactor.Extract.run ~name (e.Nfs.Corpus.program ()) in
      Hashtbl.add extractions name ex;
      ex

let spec_of name =
  let ex = extraction name in
  let model = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let plan = Compile.compile ~shared:true model ~config:store in
  Shardplan.analyze model ~config:store ~live:plan.Compile.live_idx

let stores_equal = Nfactor.Model_interp.Smap.equal Value.equal

let outputs_equal a b =
  List.length a = List.length b && List.for_all2 Packet.Pkt.equal a b

let check_stats_equal name (a : Engine.stats) (b : Engine.stats) =
  let ck what x y =
    Alcotest.(check int) (Printf.sprintf "%s: %s" name what) x y
  in
  ck "packets" a.Engine.packets b.Engine.packets;
  ck "fsm_hits" a.Engine.fsm_hits b.Engine.fsm_hits;
  ck "index_hits" a.Engine.index_hits b.Engine.index_hits;
  ck "tree_hits" a.Engine.tree_hits b.Engine.tree_hits;
  ck "scan_hits" a.Engine.scan_hits b.Engine.scan_hits;
  ck "leaf_tests" a.Engine.leaf_tests b.Engine.leaf_tests;
  ck "scan_tests" a.Engine.scan_tests b.Engine.scan_tests;
  ck "miss_no_config" a.Engine.miss_no_config b.Engine.miss_no_config;
  ck "miss_no_match" a.Engine.miss_no_match b.Engine.miss_no_match;
  Alcotest.(check (array int))
    (name ^ ": entry_hits")
    a.Engine.entry_hits b.Engine.entry_hits

(* A stream that exercises the stateful paths: interleaved
   conversations plus uniform random packets. *)
let mixed_stream ~seed ~n =
  let flows = Packet.Traffic.flow_stream ~seed ~flows:25 ~data_pkts:3 () in
  let random = Packet.Traffic.random_stream ~seed:(seed + 1) ~n () in
  Array.of_list (flows @ random @ flows)

(* ------------------------------------------------------------------ *)
(* Sharding analysis on the corpus                                     *)
(* ------------------------------------------------------------------ *)

let class_of spec name = List.assoc_opt name spec.Shardplan.tables

let test_spec_nat () =
  let spec = spec_of "nat" in
  Alcotest.(check (list string))
    "nat: flow key is the sorted 4-tuple"
    [ "dport"; "ip_dst"; "ip_src"; "sport" ]
    spec.Shardplan.key_fields;
  (match class_of spec "fwd_map" with
  | Some (Shardplan.Sharded s) ->
      Alcotest.(check bool) "fwd_map: tupled signature" true s.Shardplan.tup
  | _ -> Alcotest.fail "nat: fwd_map should be sharded");
  (match class_of spec "rev_map" with
  | Some Shardplan.Global -> ()
  | _ ->
      Alcotest.fail "nat: rev_map should be global (key reads the port counter)");
  (* Entries translating through rev_map or allocating ports write
     shared state and must serialize; the pure forward path must not. *)
  Alcotest.(check int) "nat: serial entries" 3 (Shardplan.n_serial spec)

let test_spec_portknock () =
  let spec = spec_of "portknock" in
  Alcotest.(check (list string))
    "portknock: sharded by source address" [ "ip_src" ]
    spec.Shardplan.key_fields;
  (match class_of spec "stage" with
  | Some (Shardplan.Sharded _) -> ()
  | _ -> Alcotest.fail "portknock: stage should be sharded");
  Alcotest.(check int) "portknock: no serial entries" 0 (Shardplan.n_serial spec)

let test_spec_snort () =
  let spec = spec_of "snort" in
  Alcotest.(check (list string))
    "snort: stateless, no flow key" [] spec.Shardplan.key_fields;
  Alcotest.(check int) "snort: no serial entries" 0 (Shardplan.n_serial spec)

let test_spec_firewall () =
  (* conn_table is probed with both packet directions (mirrored
     signatures), which cannot co-shard — the analysis must fall back
     to global rather than split it unsoundly. *)
  let spec = spec_of "firewall" in
  match class_of spec "conn_table" with
  | Some Shardplan.Global -> ()
  | _ -> Alcotest.fail "firewall: mirrored-key table must be global"

(* ------------------------------------------------------------------ *)
(* Flow-key hash properties                                            *)
(* ------------------------------------------------------------------ *)

let arb_pkt =
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         let rng = Packet.Rng.create seed in
         Packet.Traffic.random_pkt rng Packet.Traffic.default_profile)
       QCheck.Gen.int)

let prop_hash_total_deterministic =
  let spec = lazy (spec_of "nat") in
  QCheck.Test.make ~name:"property: flow-key hash total and deterministic"
    ~count:300 arb_pkt (fun p ->
      let spec = Lazy.force spec in
      let h = Shardplan.hash spec p in
      h >= 0 && h = Shardplan.hash spec p)

let prop_hash_key_fields_decide =
  (* Packets agreeing on every flow-key field hash identically, no
     matter what the other fields hold — the property that keeps every
     access to a sharded table on one shard. *)
  let spec = lazy (spec_of "portknock") in
  QCheck.Test.make ~name:"property: equal key fields => equal hash" ~count:300
    QCheck.(pair arb_pkt arb_pkt)
    (fun (a, b) ->
      let spec = Lazy.force spec in
      (* portknock keys on ip_src only *)
      let b = { b with Packet.Pkt.ip_src = a.Packet.Pkt.ip_src } in
      Shardplan.hash spec a = Shardplan.hash spec b)

let test_router_agrees_with_hash () =
  (* The value-side router must place a stored key on the same shard
     the packet-side hash routes the packets that probe it. *)
  let spec = spec_of "nat" in
  let route = Option.get (Shardplan.router spec "fwd_map") in
  let rng = Packet.Rng.create 99 in
  for _ = 1 to 200 do
    let p = Packet.Traffic.random_pkt rng Packet.Traffic.default_profile in
    let key =
      Value.Tuple
        [
          Value.Int p.Packet.Pkt.ip_src;
          Value.Int p.Packet.Pkt.sport;
          Value.Int p.Packet.Pkt.ip_dst;
          Value.Int p.Packet.Pkt.dport;
        ]
    in
    Alcotest.(check int) "router = packet hash" (Shardplan.hash spec p)
      (route key)
  done

(* ------------------------------------------------------------------ *)
(* N-shard differential exactness                                      *)
(* ------------------------------------------------------------------ *)

(* The merged N-shard run must be indistinguishable from one engine
   stepping the same packets in order: per-packet outcome, final
   store, and summed counters. *)
let shard_differential name ~nshards pkts () =
  let ex = extraction name in
  let model = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let plan = Compile.compile model ~config:store in
  let eng = Engine.create plan ~store in
  let expected = Engine.run_batch eng pkts in
  let sh = Shard.create ~nshards model ~config:store in
  let got =
    Fun.protect
      ~finally:(fun () -> Shard.shutdown sh)
      (fun () -> Shard.run_batch sh pkts)
  in
  Array.iteri
    (fun i (e : Engine.outcome) ->
      let g = got.(i) in
      Alcotest.(check (option int))
        (Printf.sprintf "%s/%d shards: fired, packet %d" name nshards i)
        e.Engine.fired g.Engine.fired;
      if not (outputs_equal e.Engine.outputs g.Engine.outputs) then
        Alcotest.failf "%s/%d shards: outputs differ on packet %d" name nshards
          i)
    expected;
  Alcotest.(check bool)
    (Printf.sprintf "%s/%d shards: merged store equals single-engine store" name
       nshards)
    true
    (stores_equal (Engine.snapshot eng) (Shard.snapshot sh));
  check_stats_equal
    (Printf.sprintf "%s/%d shards: merged counters" name nshards)
    eng.Engine.stats (Shard.merged_stats sh)

let test_corpus_differential () =
  List.iter
    (fun name ->
      shard_differential name ~nshards:2 (mixed_stream ~seed:41 ~n:400) ())
    Nfs.Corpus.names

let test_three_shards () =
  List.iter
    (fun name ->
      shard_differential name ~nshards:3 (mixed_stream ~seed:43 ~n:300) ())
    [ "nat"; "portknock"; "snort"; "firewall"; "lb" ]

let test_churn_differential () =
  List.iter
    (fun name ->
      let churn = Packet.Traffic.churn_gen ~concurrent:250 ~seed:17 () in
      let pkts = Array.init 3000 (fun _ -> Packet.Traffic.churn_next churn) in
      shard_differential name ~nshards:2 pkts ())
    [ "nat"; "portknock"; "synguard" ]

(* ------------------------------------------------------------------ *)
(* Counted batches and the RCU plan swap                               *)
(* ------------------------------------------------------------------ *)

let test_count_matches_uncounted () =
  let ex = extraction "nat" in
  let model = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let pkts = mixed_stream ~seed:47 ~n:300 in
  let a = Shard.create ~nshards:2 model ~config:store in
  let b = Shard.create ~nshards:2 model ~config:store in
  Fun.protect
    ~finally:(fun () ->
      Shard.shutdown a;
      Shard.shutdown b)
    (fun () ->
      let _ = Shard.run_batch a pkts in
      Shard.run_batch_count b pkts;
      Alcotest.(check bool) "counted batch: same merged store" true
        (stores_equal (Shard.snapshot a) (Shard.snapshot b));
      check_stats_equal "counted batch" (Shard.merged_stats a)
        (Shard.merged_stats b))

let test_rcu_swap_midstream () =
  (* Swap in a freshly compiled plan between batches; behavior must be
     seamless — the run equals a single engine over the whole stream,
     and counters survive the swap. *)
  let ex = extraction "nat" in
  let model = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let pkts = mixed_stream ~seed:53 ~n:400 in
  let mid = Array.length pkts / 2 in
  let eng = Engine.create (Compile.compile model ~config:store) ~store in
  let expected = Engine.run_batch eng pkts in
  let sh = Shard.create ~nshards:2 model ~config:store in
  Fun.protect
    ~finally:(fun () -> Shard.shutdown sh)
    (fun () ->
      let got1 = Shard.run_batch sh (Array.sub pkts 0 mid) in
      Shard.swap_plan sh (Compile.compile ~shared:true model ~config:store);
      let got2 =
        Shard.run_batch sh (Array.sub pkts mid (Array.length pkts - mid))
      in
      let got = Array.append got1 got2 in
      Array.iteri
        (fun i (e : Engine.outcome) ->
          Alcotest.(check (option int))
            (Printf.sprintf "rcu: fired, packet %d" i)
            e.Engine.fired got.(i).Engine.fired)
        expected;
      Alcotest.(check bool) "rcu: merged store" true
        (stores_equal (Engine.snapshot eng) (Shard.snapshot sh));
      check_stats_equal "rcu: merged counters" eng.Engine.stats
        (Shard.merged_stats sh))

let test_swap_rejects_unshared_plan () =
  let ex = extraction "portknock" in
  let model = ex.Nfactor.Extract.model in
  let store = Nfactor.Model_interp.initial_store ex in
  let sh = Shard.create ~nshards:2 model ~config:store in
  Fun.protect
    ~finally:(fun () -> Shard.shutdown sh)
    (fun () ->
      Alcotest.check_raises "mutable plan rejected"
        (Invalid_argument "Shard.swap_plan: plan must be compiled ~shared:true")
        (fun () -> Shard.swap_plan sh (Compile.compile model ~config:store)))

let test_engine_step_count_equiv () =
  (* Engine.step_count (the allocation-free timed-loop step) must be
     observationally equal to Engine.step: same state, same counters. *)
  List.iter
    (fun name ->
      let ex = extraction name in
      let model = ex.Nfactor.Extract.model in
      let store = Nfactor.Model_interp.initial_store ex in
      let plan = Compile.compile model ~config:store in
      let a = Engine.create plan ~store in
      let b = Engine.create plan ~store in
      let pkts = mixed_stream ~seed:59 ~n:250 in
      Array.iter (fun p -> ignore (Engine.step a p)) pkts;
      Array.iter (fun p -> Engine.step_count b p) pkts;
      Alcotest.(check bool)
        (name ^ ": step_count state == step state")
        true
        (stores_equal (Engine.snapshot a) (Engine.snapshot b));
      check_stats_equal
        (name ^ ": step_count counters")
        a.Engine.stats b.Engine.stats)
    Nfs.Corpus.names

let suite =
  [
    Alcotest.test_case "spec: nat" `Quick test_spec_nat;
    Alcotest.test_case "spec: portknock" `Quick test_spec_portknock;
    Alcotest.test_case "spec: snort" `Quick test_spec_snort;
    Alcotest.test_case "spec: firewall" `Quick test_spec_firewall;
    QCheck_alcotest.to_alcotest prop_hash_total_deterministic;
    QCheck_alcotest.to_alcotest prop_hash_key_fields_decide;
    Alcotest.test_case "router agrees with packet hash" `Quick
      test_router_agrees_with_hash;
    Alcotest.test_case "corpus differential, 2 shards" `Quick
      test_corpus_differential;
    Alcotest.test_case "stateful differential, 3 shards" `Quick
      test_three_shards;
    Alcotest.test_case "churn differential, 2 shards" `Quick
      test_churn_differential;
    Alcotest.test_case "counted == uncounted batches" `Quick
      test_count_matches_uncounted;
    Alcotest.test_case "rcu plan swap mid-stream" `Quick
      test_rcu_swap_midstream;
    Alcotest.test_case "swap rejects mutable plan" `Quick
      test_swap_rejects_unshared_plan;
    Alcotest.test_case "engine step_count equivalence" `Quick
      test_engine_step_count_equiv;
  ]
