(* The chain runtime (lib/runtime/chainplan + chainengine): the
   namespacing bijection, link-time hop fusion, differential exactness
   of the linked dataplane against the reference interpreter chain
   (outputs, per-hop traces, per-hop final stores) on random and churn
   traffic, and the sharded chain's admission rules + exactness. *)

open Symexec
open Nfactor_runtime

let extractions : (string, Nfactor.Extract.result) Hashtbl.t = Hashtbl.create 16

let extraction name =
  match Hashtbl.find_opt extractions name with
  | Some ex -> ex
  | None ->
      let e = Option.get (Nfs.Corpus.find name) in
      let ex = Nfactor.Extract.run ~name (e.Nfs.Corpus.program ()) in
      Hashtbl.add extractions name ex;
      ex

let node name =
  let ex = extraction name in
  (name, ex.Nfactor.Extract.model, Nfactor.Model_interp.initial_store ex)

let link names = Chainplan.link (List.map node names)

let stores_equal = Nfactor.Model_interp.Smap.equal Value.equal

let outputs_equal a b =
  List.length a = List.length b && List.for_all2 Packet.Pkt.equal a b

(* ------------------------------------------------------------------ *)
(* Linking and renaming                                               *)
(* ------------------------------------------------------------------ *)

let test_rename_bijection () =
  (* Renamed model behaves step-for-step like the original: same
     outputs, same store modulo key prefixes. *)
  let _, m, store = node "firewall" in
  let rm = Chainplan.rename_model ~prefix:"h0:" m in
  let rstore = Chainplan.rename_store ~prefix:"h0:" store in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " prefixed") true (String.starts_with ~prefix:"h0:" name))
    (rm.Nfactor.Model.cfg_vars @ rm.Nfactor.Model.ois_vars);
  let pkts = Packet.Traffic.random_stream ~seed:7 ~n:500 () in
  let s1, o1 = Nfactor.Model_interp.run m ~store ~pkts in
  let s2, o2 = Nfactor.Model_interp.run rm ~store:rstore ~pkts in
  Alcotest.(check bool) "outputs equal" true (List.for_all2 outputs_equal o1 o2);
  Alcotest.(check bool) "stores equal modulo prefix" true
    (stores_equal s2 (Chainplan.rename_store ~prefix:"h0:" s1))

let test_link_shape () =
  let cp = link [ "firewall"; "nat"; "snort" ] in
  Alcotest.(check int) "hops" 3 (Chainplan.n_hops cp);
  Alcotest.(check (list string)) "ids" [ "firewall"; "nat"; "snort" ] (Chainplan.hop_ids cp);
  (* The merged store covers every hop's bindings under its prefix. *)
  Array.iter
    (fun (h : Chainplan.hop) ->
      Nfactor.Model_interp.Smap.iter
        (fun name _ ->
          Alcotest.(check bool) (name ^ " in store0") true
            (Nfactor.Model_interp.Smap.mem name cp.Chainplan.store0))
        h.Chainplan.h_store)
    cp.Chainplan.hops;
  (* split_store inverts the merge back to original names. *)
  List.iter2
    (fun name (id, s) ->
      Alcotest.(check string) "hop id" name id;
      let _, _, orig = node name in
      Alcotest.(check bool) (name ^ " split store") true (stores_equal orig s))
    [ "firewall"; "nat"; "snort" ]
    (Chainplan.split_store cp cp.Chainplan.store0)

let test_duplicate_ids () =
  let cp = Chainplan.link [ node "snort"; node "snort" ] in
  Alcotest.(check (list string)) "uniquified" [ "snort"; "snort#1" ] (Chainplan.hop_ids cp)

let test_fusion_static_rewrites () =
  (* nat pins ip_src to a config constant; the firewall's root
     dispatches on ip_src & inside_mask — the link must pre-decide at
     least one dispatch node for nat's static entries. *)
  let cp = link [ "nat"; "firewall" ] in
  Alcotest.(check bool) "fused entries > 0" true (cp.Chainplan.fused_entries > 0);
  Alcotest.(check bool) "fused nodes > 0" true (cp.Chainplan.fused_nodes > 0);
  (* mirror pins dport := collector_port; lb dispatches on dport. *)
  let cp2 = link [ "mirror"; "lb" ] in
  Alcotest.(check bool) "mirror->lb fuses" true (cp2.Chainplan.fused_entries > 0);
  (* firewall rewrites nothing statically useful for snort's
     ttl/len/proto dispatch: no fusion, handoff fallback. *)
  let cp3 = link [ "firewall"; "snort" ] in
  Alcotest.(check int) "no fusion" 0 cp3.Chainplan.fused_entries

let test_fused_walks_counted () =
  let cp = link [ "nat"; "firewall" ] in
  let eng = Chainengine.create cp in
  List.iter
    (fun p -> ignore (Chainengine.step eng p))
    (Packet.Traffic.random_stream ~seed:11 ~n:2000 ());
  Alcotest.(check bool) "fused walks observed" true (eng.Chainengine.fused_walks > 0)

(* ------------------------------------------------------------------ *)
(* Differential exactness vs Verify.Network                           *)
(* ------------------------------------------------------------------ *)

let ref_chain names =
  Verify.Network.chain
    (List.map (fun n -> let id, m, s = node n in Verify.Network.node id m s) names)

let check_differential ?(seed = 2016) ~n names =
  let pkts = Packet.Traffic.random_stream ~seed ~n () in
  let chain = ref_chain names in
  let ref_results = Verify.Network.run chain pkts in
  let eng = Chainengine.create (link names) in
  let outs = Chainengine.run_batch eng (Array.of_list pkts) in
  List.iteri
    (fun i (ref_pkts, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "outputs of packet %d" i)
        true
        (outputs_equal ref_pkts outs.(i)))
    ref_results;
  List.iter2
    (fun (node : Verify.Network.node) (id, got) ->
      Alcotest.(check string) "store hop order" node.Verify.Network.id id;
      Alcotest.(check bool) (id ^ " final store") true
        (stores_equal node.Verify.Network.store got))
    chain.Verify.Network.nodes
    (Chainengine.snapshot_hops eng)

let test_differential_3nf () = check_differential ~n:4000 [ "firewall"; "nat"; "snort" ]
let test_differential_fused () = check_differential ~n:4000 [ "nat"; "firewall" ]
let test_differential_mirror_lb () = check_differential ~n:4000 [ "mirror"; "lb" ]

let test_differential_stateful () =
  check_differential ~n:4000 [ "portknock"; "synguard" ];
  check_differential ~n:4000 [ "acl"; "ratelimiter" ]

let test_differential_churn () =
  let names = [ "firewall"; "nat"; "snort" ] in
  let gen () = Packet.Traffic.churn_gen ~concurrent:48 ~seed:5 () in
  let ch = gen () in
  let pkts = List.init 4000 (fun _ -> Packet.Traffic.churn_next ch) in
  let chain = ref_chain names in
  let ref_results = Verify.Network.run chain pkts in
  let eng = Chainengine.create (link names) in
  let outs = Chainengine.run_batch eng (Array.of_list pkts) in
  List.iteri
    (fun i (ref_pkts, _) ->
      Alcotest.(check bool) (Printf.sprintf "churn outputs %d" i) true
        (outputs_equal ref_pkts outs.(i)))
    ref_results;
  List.iter2
    (fun (node : Verify.Network.node) (_, got) ->
      Alcotest.(check bool) (node.Verify.Network.id ^ " churn store") true
        (stores_equal node.Verify.Network.store got))
    chain.Verify.Network.nodes
    (Chainengine.snapshot_hops eng)

let test_trace_matches_interp () =
  let names = [ "firewall"; "nat"; "snort" ] in
  let pkts = Packet.Traffic.random_stream ~seed:3 ~n:300 () in
  let chain = ref_chain names in
  let eng = Chainengine.create (link names) in
  List.iter
    (fun p ->
      let ref_out, ref_hops = Verify.Network.push chain p in
      let out, hops = Chainengine.step_trace eng p in
      Alcotest.(check bool) "trace outputs" true (outputs_equal ref_out out);
      List.iter2
        (fun (rh : Verify.Network.hop) (h : Chainengine.hoprec) ->
          Alcotest.(check string) "hop id" rh.Verify.Network.node_id h.Chainengine.hop_id;
          Alcotest.(check bool) "entered" true
            (outputs_equal rh.Verify.Network.entered h.Chainengine.entered);
          Alcotest.(check bool) "left" true
            (outputs_equal rh.Verify.Network.left h.Chainengine.left))
        ref_hops hops)
    pkts

(* ------------------------------------------------------------------ *)
(* Sharded chains                                                     *)
(* ------------------------------------------------------------------ *)

let test_shard_admission () =
  (* Global-table hops block sharding with a named diagnostic. *)
  (match Chainplan.shard_spec (link [ "firewall"; "nat" ]) with
  | Ok _ -> Alcotest.fail "firewall chain must not shard"
  | Error e ->
      Alcotest.(check bool) "names the hop" true
        (String.length e > 0
        && (String.starts_with ~prefix:"hop firewall" e
           || String.starts_with ~prefix:"hop nat" e)));
  (* Pure flow-key chains shard. *)
  (match Chainplan.shard_spec (link [ "snort"; "synguard"; "ips" ]) with
  | Ok spec ->
      Alcotest.(check (list string)) "flow key" [ "ip_src" ] spec.Shardplan.key_fields
  | Error e -> Alcotest.fail ("snort,synguard,ips should shard: " ^ e));
  (* Stateless chains shard trivially. *)
  match Chainplan.shard_spec (link [ "snort"; "mirror" ]) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("stateless chain should shard: " ^ e)

let test_shard_exactness () =
  let names = [ "snort"; "synguard"; "ips" ] in
  let cp = link names in
  let pkts = Array.of_list (Packet.Traffic.random_stream ~seed:2016 ~n:4000 ()) in
  let single = Chainengine.create cp in
  let single_outs = Chainengine.run_batch single pkts in
  match Chainengine.shard cp ~nshards:3 with
  | Error e -> Alcotest.fail e
  | Ok sh ->
      let shard_outs = Chainengine.shard_run_batch sh pkts in
      Array.iteri
        (fun i outs ->
          Alcotest.(check bool) (Printf.sprintf "sharded outputs %d" i) true
            (outputs_equal outs shard_outs.(i)))
        single_outs;
      List.iter2
        (fun (id, a) (_, b) ->
          Alcotest.(check bool) (id ^ " merged store") true (stores_equal a b))
        (Chainengine.snapshot_hops single)
        (Chainengine.shard_snapshot_hops sh);
      Alcotest.(check int) "injected" (Array.length pkts) (Chainengine.shard_injected sh)

let suite =
  [
    Alcotest.test_case "rename is a behavior-preserving bijection" `Quick test_rename_bijection;
    Alcotest.test_case "link merges namespaced stores and splits them back" `Quick test_link_shape;
    Alcotest.test_case "duplicate hop ids are uniquified" `Quick test_duplicate_ids;
    Alcotest.test_case "static rewrites fuse the downstream dispatch" `Quick test_fusion_static_rewrites;
    Alcotest.test_case "fused walks are taken at runtime" `Quick test_fused_walks_counted;
    Alcotest.test_case "3-NF chain == interpreter chain" `Quick test_differential_3nf;
    Alcotest.test_case "fused chain == interpreter chain" `Quick test_differential_fused;
    Alcotest.test_case "mirror->lb (multi-emit) == interpreter chain" `Quick test_differential_mirror_lb;
    Alcotest.test_case "stateful chains == interpreter chain" `Quick test_differential_stateful;
    Alcotest.test_case "churn traffic == interpreter chain" `Quick test_differential_churn;
    Alcotest.test_case "per-hop traces match Network.push" `Quick test_trace_matches_interp;
    Alcotest.test_case "shard admission rules" `Quick test_shard_admission;
    Alcotest.test_case "sharded chain == single chain engine" `Quick test_shard_exactness;
  ]
