open Symexec

let se = Alcotest.testable Sexpr.pp Sexpr.equal

let test_constant_folding () =
  Alcotest.check se "add folds" (Sexpr.int 5)
    (Sexpr.mk_bin Nfl.Ast.Add (Sexpr.int 2) (Sexpr.int 3));
  Alcotest.check se "cmp folds" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Lt (Sexpr.int 1) (Sexpr.int 2));
  Alcotest.check se "band folds" (Sexpr.int 2)
    (Sexpr.mk_bin Nfl.Ast.Band (Sexpr.int 6) (Sexpr.int 3))

let test_identity_simplifications () =
  let x = Sexpr.sym "x" in
  Alcotest.check se "x+0" x (Sexpr.mk_bin Nfl.Ast.Add x (Sexpr.int 0));
  Alcotest.check se "0+x" x (Sexpr.mk_bin Nfl.Ast.Add (Sexpr.int 0) x);
  Alcotest.check se "x*1" x (Sexpr.mk_bin Nfl.Ast.Mul x (Sexpr.int 1));
  Alcotest.check se "x==x" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Eq x x);
  Alcotest.check se "x!=x" Sexpr.fls (Sexpr.mk_bin Nfl.Ast.Ne x x);
  Alcotest.check se "true&&x" x (Sexpr.mk_bin Nfl.Ast.And Sexpr.tru x);
  Alcotest.check se "x||false" x (Sexpr.mk_bin Nfl.Ast.Or x Sexpr.fls);
  Alcotest.check se "false&&x" Sexpr.fls (Sexpr.mk_bin Nfl.Ast.And Sexpr.fls x);
  Alcotest.check se "not not x" x (Sexpr.mk_not (Sexpr.mk_not x))

let test_tuple_key_relation () =
  let t1 = Sexpr.mk_tuple [ Sexpr.sym "a"; Sexpr.int 1 ] in
  let t2 = Sexpr.mk_tuple [ Sexpr.sym "a"; Sexpr.int 2 ] in
  let t3 = Sexpr.mk_tuple [ Sexpr.sym "a"; Sexpr.int 1 ] in
  Alcotest.check se "distinct component -> Ne" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Ne t1 t2);
  Alcotest.check se "identical -> Eq" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Eq t1 t3)

let test_get_resolution () =
  let lst = Sexpr.mk_list [ Sexpr.int 10; Sexpr.sym "y" ] in
  Alcotest.check se "concrete index" (Sexpr.int 10) (Sexpr.mk_get lst (Sexpr.int 0));
  Alcotest.check se "symbolic element" (Sexpr.sym "y") (Sexpr.mk_get lst (Sexpr.int 1));
  (match Sexpr.view (Sexpr.mk_get lst (Sexpr.sym "i")) with
  | Sexpr.Get _ -> ()
  | _ -> Alcotest.failf "symbolic index stays: %s" (Sexpr.to_string (Sexpr.mk_get lst (Sexpr.sym "i"))));
  Alcotest.check se "tuple of consts folds whole"
    (Sexpr.int 7)
    (Sexpr.mk_get (Sexpr.const (Value.List [ Value.Int 7 ])) (Sexpr.int 0))

let test_dict_membership_resolution () =
  let d0 = Sexpr.dict_base "tbl" in
  let k = Sexpr.sym "k" in
  (* Unknown base: atom. *)
  (match Sexpr.view (Sexpr.mk_mem d0 k) with
  | Sexpr.Mem _ -> ()
  | _ -> Alcotest.failf "atom expected: %s" (Sexpr.to_string (Sexpr.mk_mem d0 k)));
  (* After inserting k: true. *)
  let d1 = { d0 with Sexpr.writes = [ (k, Some (Sexpr.int 1)) ] } in
  Alcotest.check se "inserted" Sexpr.tru (Sexpr.mk_mem d1 k);
  (* After deleting k: false. *)
  let d2 = { d0 with Sexpr.writes = [ (k, None) ] } in
  Alcotest.check se "deleted" Sexpr.fls (Sexpr.mk_mem d2 k);
  (* Distinct concrete key skips the write. *)
  let d3 = { d0 with Sexpr.writes = [ (Sexpr.int 5, Some (Sexpr.int 1)) ] } in
  (match Sexpr.view (Sexpr.mk_mem d3 (Sexpr.int 6)) with
  | Sexpr.Mem (d, _) -> Alcotest.(check int) "write skipped" 0 (List.length d.Sexpr.writes)
  | _ -> Alcotest.failf "atom expected: %s" (Sexpr.to_string (Sexpr.mk_mem d3 (Sexpr.int 6))));
  (* Empty-base dict bottoms out at false. *)
  Alcotest.check se "empty dict" Sexpr.fls (Sexpr.mk_mem Sexpr.dict_empty (Sexpr.int 1))

let test_dict_get_resolution () =
  let d0 = Sexpr.dict_base "tbl" in
  let k = Sexpr.sym "k" in
  let d1 = { d0 with Sexpr.writes = [ (k, Some (Sexpr.int 42)) ] } in
  Alcotest.check se "read back" (Sexpr.int 42) (Sexpr.mk_dget d1 k);
  (match Sexpr.view (Sexpr.mk_dget d0 k) with
  | Sexpr.Dget _ -> ()
  | _ -> Alcotest.failf "unresolved read expected: %s" (Sexpr.to_string (Sexpr.mk_dget d0 k)))

let test_hash_folds_on_const () =
  let v = Value.Tuple [ Value.Int 1 ] in
  Alcotest.check se "hash folds"
    (Sexpr.int (Value.hash_value v))
    (Sexpr.mk_ufun "hash" [ Sexpr.const v ])

let test_subst () =
  let e = Sexpr.mk_bin Nfl.Ast.Add (Sexpr.sym "a") (Sexpr.sym "b") in
  let f = function "a" -> Some (Value.Int 1) | "b" -> Some (Value.Int 2) | _ -> None in
  Alcotest.check se "substitution folds" (Sexpr.int 3) (Sexpr.subst f e)

let test_syms () =
  let d = { Sexpr.base = "tbl"; writes = [ (Sexpr.sym "k", Some (Sexpr.sym "v")) ] } in
  let e = Sexpr.mk_bin Nfl.Ast.And (Sexpr.mk_mem d (Sexpr.sym "q")) (Sexpr.sym "b") in
  let names = Sexpr.Sset.elements (Sexpr.syms e) in
  Alcotest.(check (slist string compare)) "all syms" [ "b"; "k"; "q"; "tbl"; "v" ] names

(* New mk_bin folds: annihilators and self-cancellation. *)
let test_annihilator_folds () =
  let x = Sexpr.sym "x" in
  Alcotest.check se "x*0" (Sexpr.int 0) (Sexpr.mk_bin Nfl.Ast.Mul x (Sexpr.int 0));
  Alcotest.check se "0*x" (Sexpr.int 0) (Sexpr.mk_bin Nfl.Ast.Mul (Sexpr.int 0) x);
  Alcotest.check se "x-x" (Sexpr.int 0) (Sexpr.mk_bin Nfl.Ast.Sub x x);
  (* A fully concrete composite still folds to a constant through the
     new rules. *)
  let e =
    Sexpr.mk_bin Nfl.Ast.Add
      (Sexpr.mk_bin Nfl.Ast.Mul (Sexpr.int 7) (Sexpr.int 0))
      (Sexpr.mk_bin Nfl.Ast.Sub (Sexpr.int 9) (Sexpr.int 9))
  in
  Alcotest.check se "concrete composite folds" (Sexpr.int 0) e;
  (* Distinct symbols do not cancel. *)
  match Sexpr.view (Sexpr.mk_bin Nfl.Ast.Sub x (Sexpr.sym "y")) with
  | Sexpr.Bin (Nfl.Ast.Sub, _, _) -> ()
  | _ -> Alcotest.fail "x-y must stay symbolic"

(* Boolean annihilators: complement detection is physical thanks to
   interning, so p ∨ ¬p and p ∧ ¬p fold without a solver. The merge
   engine relies on the Or fold to keep a merged path condition free
   of the tautological guard after a complete join. *)
let test_bool_annihilators () =
  let p = Sexpr.mk_bin Nfl.Ast.Eq (Sexpr.sym "bx") (Sexpr.int 1) in
  Alcotest.check se "p or ~p" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Or p (Sexpr.mk_not p));
  Alcotest.check se "~p or p" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Or (Sexpr.mk_not p) p);
  Alcotest.check se "p and ~p" Sexpr.fls (Sexpr.mk_bin Nfl.Ast.And p (Sexpr.mk_not p));
  Alcotest.check se "~p and p" Sexpr.fls (Sexpr.mk_bin Nfl.Ast.And (Sexpr.mk_not p) p);
  Alcotest.check se "true or p" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Or Sexpr.tru p);
  Alcotest.check se "false and p" Sexpr.fls (Sexpr.mk_bin Nfl.Ast.And Sexpr.fls p);
  (* Distinct atoms are not complements. *)
  let q = Sexpr.mk_bin Nfl.Ast.Eq (Sexpr.sym "bx") (Sexpr.int 2) in
  match Sexpr.view (Sexpr.mk_bin Nfl.Ast.Or p (Sexpr.mk_not q)) with
  | Sexpr.Bin (Nfl.Ast.Or, _, _) -> ()
  | _ -> Alcotest.fail "p or ~q must stay symbolic"

(* The ite folds the merge engine relies on to keep value summaries
   small: constant guards select an arm, equal arms collapse, negated
   guards swap, boolean arms reduce to the guard, nested same-guard
   summaries prune to the reachable arm. *)
let test_ite_folds () =
  let g = Sexpr.mk_bin Nfl.Ast.Eq (Sexpr.sym "ig") (Sexpr.int 0) in
  let a = Sexpr.sym "ia" and b = Sexpr.sym "ib" in
  Alcotest.check se "true guard selects then" a (Sexpr.mk_ite Sexpr.tru a b);
  Alcotest.check se "false guard selects else" b (Sexpr.mk_ite Sexpr.fls a b);
  Alcotest.check se "nonzero int guard selects then" a (Sexpr.mk_ite (Sexpr.int 1) a b);
  Alcotest.check se "zero int guard selects else" b (Sexpr.mk_ite (Sexpr.int 0) a b);
  Alcotest.check se "equal arms collapse" a (Sexpr.mk_ite g a a);
  Alcotest.check se "negated guard swaps arms" (Sexpr.mk_ite g a b)
    (Sexpr.mk_ite (Sexpr.mk_not g) b a);
  Alcotest.check se "boolean arms reduce to guard" g (Sexpr.mk_ite g Sexpr.tru Sexpr.fls);
  Alcotest.check se "inverted boolean arms negate" (Sexpr.mk_not g)
    (Sexpr.mk_ite g Sexpr.fls Sexpr.tru);
  Alcotest.check se "nested same-guard then-arm prunes" (Sexpr.mk_ite g a b)
    (Sexpr.mk_ite g (Sexpr.mk_ite g a b) b);
  Alcotest.check se "nested same-guard else-arm prunes" (Sexpr.mk_ite g a b)
    (Sexpr.mk_ite g a (Sexpr.mk_ite g a b));
  (* Interning: the summary is a shared physical term. *)
  Alcotest.(check bool) "ite interned" true (Sexpr.mk_ite g a b == Sexpr.mk_ite g a b);
  (* Substitution distributes and re-folds: a resolved guard selects. *)
  let f = function "ig" -> Some (Value.Int 0) | _ -> None in
  Alcotest.check se "subst resolves the guard" a (Sexpr.subst f (Sexpr.mk_ite g a b));
  (* Free symbols span guard and both arms. *)
  let names = Sexpr.Sset.elements (Sexpr.syms (Sexpr.mk_ite g a b)) in
  Alcotest.(check (slist string compare)) "ite syms" [ "ia"; "ib"; "ig" ] names

(* Hash-consing invariants: structurally equal construction yields the
   same physical term and id; distinct terms get distinct ids. *)
let test_interning_invariants () =
  let x = Sexpr.sym "x" and y = Sexpr.sym "y" in
  let a = Sexpr.mk_bin Nfl.Ast.Add x y in
  let b = Sexpr.mk_bin Nfl.Ast.Add x y in
  Alcotest.(check bool) "same construction interned" true (a == b);
  Alcotest.(check int) "same id" (Sexpr.id a) (Sexpr.id b);
  Alcotest.(check bool) "sym interned" true (Sexpr.sym "x" == x);
  let c = Sexpr.mk_bin Nfl.Ast.Add y x in
  Alcotest.(check bool) "different terms differ physically" true (not (a == c));
  Alcotest.(check bool) "different terms, different ids" true (Sexpr.id a <> Sexpr.id c);
  (* equal/compare/hash agree with interning. *)
  Alcotest.(check bool) "equal is physical" true (Sexpr.equal a b && not (Sexpr.equal a c));
  Alcotest.(check int) "compare reflexive" 0 (Sexpr.compare a b);
  Alcotest.(check int) "hash stable" (Sexpr.hash a) (Sexpr.hash b);
  (* Deep nesting still O(1)-comparable: build twice, expect sharing. *)
  let deep () =
    List.fold_left
      (fun acc i -> Sexpr.mk_bin Nfl.Ast.Add acc (Sexpr.int i))
      x
      (List.init 64 Fun.id)
  in
  Alcotest.(check bool) "deep terms shared" true (deep () == deep ());
  Alcotest.(check bool) "structural equality agrees" true (Sexpr.equal_structural a b)

let test_intern_count_monotone () =
  let before = Sexpr.intern_count () in
  let fresh = Sexpr.mk_bin Nfl.Ast.Mul (Sexpr.sym "icm_a") (Sexpr.sym "icm_b") in
  let after = Sexpr.intern_count () in
  Alcotest.(check bool) "fresh construction grows the table" true (after > before);
  let again = Sexpr.mk_bin Nfl.Ast.Mul (Sexpr.sym "icm_a") (Sexpr.sym "icm_b") in
  Alcotest.(check bool) "re-construction does not" true (Sexpr.intern_count () = after);
  Alcotest.(check bool) "and is shared" true (fresh == again)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "identity simplifications" `Quick test_identity_simplifications;
    Alcotest.test_case "tuple key relations" `Quick test_tuple_key_relation;
    Alcotest.test_case "get resolution" `Quick test_get_resolution;
    Alcotest.test_case "dict membership resolution" `Quick test_dict_membership_resolution;
    Alcotest.test_case "dict get resolution" `Quick test_dict_get_resolution;
    Alcotest.test_case "hash folds on constants" `Quick test_hash_folds_on_const;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "free symbols" `Quick test_syms;
    Alcotest.test_case "annihilator folds" `Quick test_annihilator_folds;
    Alcotest.test_case "boolean annihilators" `Quick test_bool_annihilators;
    Alcotest.test_case "ite folds" `Quick test_ite_folds;
    Alcotest.test_case "interning invariants" `Quick test_interning_invariants;
    Alcotest.test_case "intern count monotone" `Quick test_intern_count_monotone;
  ]
