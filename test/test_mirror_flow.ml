(* Tests for the mirror NF's multi-send behaviour plus the previously
   untested Flow module. *)

open Nfactor
open Symexec

let mirror_canon () =
  Nfl.Transform.canonicalize ((Option.get (Nfs.Corpus.find "mirror")).Nfs.Corpus.program ())

let extract_mirror () =
  Extract.run ~name:"mirror" ((Option.get (Nfs.Corpus.find "mirror")).Nfs.Corpus.program ())

let pkt ~dport =
  Packet.Pkt.make ~ip_src:(Packet.Addr.of_string "10.0.0.1")
    ~ip_dst:(Packet.Addr.of_string "3.3.3.3") ~sport:5555 ~dport ()

(* --------------------------------------------------------------- *)
(* Mirror semantics                                                 *)
(* --------------------------------------------------------------- *)

let test_mirror_duplicates_selected () =
  let r = Interp.run (mirror_canon ()) ~inputs:[ pkt ~dport:80; pkt ~dport:22 ] in
  Alcotest.(check (list int)) "copy+orig for :80, orig only for :22" [ 2; 1 ]
    (List.map List.length r.Interp.per_input);
  match r.Interp.outputs with
  | [ copy; orig; other ] ->
      Alcotest.(check string) "copy to collector" "7.7.7.7"
        (Packet.Addr.to_string copy.Packet.Pkt.ip_dst);
      Alcotest.(check int) "collector port" 9000 copy.Packet.Pkt.dport;
      Alcotest.(check string) "original restored" "3.3.3.3"
        (Packet.Addr.to_string orig.Packet.Pkt.ip_dst);
      Alcotest.(check int) "original port" 80 orig.Packet.Pkt.dport;
      Alcotest.(check int) "unmirrored untouched" 22 other.Packet.Pkt.dport
  | _ -> Alcotest.fail "expected three outputs"

let test_mirror_model_multi_send () =
  let ex = extract_mirror () in
  let multi =
    List.filter
      (fun (e : Model.entry) ->
        match e.Model.pkt_action with Model.Forward snaps -> List.length snaps = 2 | Model.Drop -> false)
      ex.Extract.model.Model.entries
  in
  Alcotest.(check bool) "a two-send entry exists" true (multi <> []);
  (* The first snapshot rewrites the destination to the collector, the
     second leaves it alone. *)
  (match (List.hd multi).Model.pkt_action with
  | Model.Forward [ copy; orig ] ->
      Alcotest.(check bool) "copy rewrites ip_dst" true
        (not (Sexpr.equal (List.assoc "ip_dst" copy) (Sexpr.sym "pkt.ip_dst")));
      Alcotest.(check bool) "orig keeps ip_dst" true
        (Sexpr.equal (List.assoc "ip_dst" orig) (Sexpr.sym "pkt.ip_dst"))
  | _ -> Alcotest.fail "two snapshots expected")

let test_mirror_differential () =
  let v = Equiv.random_testing ~seed:808 ~trials:1000 (extract_mirror ()) in
  Alcotest.(check int) "no mismatches" 0 (List.length v.Equiv.mismatches)

let test_mirror_serialization () =
  let m = (extract_mirror ()).Extract.model in
  let m' = Model_io.of_string (Model_io.to_string m) in
  Alcotest.(check string) "multi-send survives roundtrip" (Model.to_string m) (Model.to_string m')

(* --------------------------------------------------------------- *)
(* Flow module                                                      *)
(* --------------------------------------------------------------- *)

let ft = Alcotest.testable Packet.Flow.pp Packet.Flow.equal

let test_flow_of_pkt () =
  let p = pkt ~dport:80 in
  let f = Packet.Flow.of_pkt p in
  Alcotest.check ft "fields" (Packet.Flow.make ~src:p.Packet.Pkt.ip_src ~sport:5555 ~dst:p.Packet.Pkt.ip_dst ~dport:80) f

let test_flow_reverse_involution () =
  let f = Packet.Flow.of_pkt (pkt ~dport:80) in
  Alcotest.check ft "reverse . reverse = id" f (Packet.Flow.reverse (Packet.Flow.reverse f))

let test_flow_canonical () =
  let f = Packet.Flow.of_pkt (pkt ~dport:80) in
  let r = Packet.Flow.reverse f in
  Alcotest.check ft "same canonical both directions" (Packet.Flow.canonical f) (Packet.Flow.canonical r);
  Alcotest.check ft "canonical idempotent" (Packet.Flow.canonical f)
    (Packet.Flow.canonical (Packet.Flow.canonical f))

let test_flow_map_set () =
  let f = Packet.Flow.of_pkt (pkt ~dport:80) in
  let m = Packet.Flow.Map.singleton f 42 in
  Alcotest.(check (option int)) "map lookup" (Some 42) (Packet.Flow.Map.find_opt f m);
  Alcotest.(check (option int)) "reverse is a different key" None
    (Packet.Flow.Map.find_opt (Packet.Flow.reverse f) m);
  let s = Packet.Flow.Set.of_list [ f; Packet.Flow.reverse f; f ] in
  Alcotest.(check int) "set dedups" 2 (Packet.Flow.Set.cardinal s)

let qcheck_canonical_direction_free =
  QCheck.Test.make ~name:"flow: canonical is direction-free" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = List.hd (Packet.Traffic.random_stream ~seed ~n:1 ()) in
      let f = Packet.Flow.of_pkt p in
      Packet.Flow.equal (Packet.Flow.canonical f) (Packet.Flow.canonical (Packet.Flow.reverse f)))

let suite =
  [
    Alcotest.test_case "mirror duplicates selected" `Quick test_mirror_duplicates_selected;
    Alcotest.test_case "mirror model multi-send" `Quick test_mirror_model_multi_send;
    Alcotest.test_case "mirror differential 1000" `Quick test_mirror_differential;
    Alcotest.test_case "mirror serialization" `Quick test_mirror_serialization;
    Alcotest.test_case "flow of_pkt" `Quick test_flow_of_pkt;
    Alcotest.test_case "flow reverse involution" `Quick test_flow_reverse_involution;
    Alcotest.test_case "flow canonical" `Quick test_flow_canonical;
    Alcotest.test_case "flow map/set" `Quick test_flow_map_set;
    QCheck_alcotest.to_alcotest qcheck_canonical_direction_free;
  ]
