(* Extended-corpus NFs (ips, synguard) and cross-cutting integration
   properties: dynamic slicing against real traces, and semantic
   slice correctness (the residual program behaves like the original). *)

open Nfactor
open Symexec

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

let pkt ?(flags = Packet.Headers.ack) ?(payload = "") ~src ~sport ~dst ~dport () =
  Packet.Pkt.make ~ip_src:(Packet.Addr.of_string src) ~ip_dst:(Packet.Addr.of_string dst) ~sport
    ~dport ~tcp_flags:flags ~payload ()

(* --------------------------------------------------------------- *)
(* IPS                                                              *)
(* --------------------------------------------------------------- *)

let test_ips_semantics () =
  let p = Nfl.Transform.canonicalize ((Option.get (Nfs.Corpus.find "ips")).Nfs.Corpus.program ()) in
  let benign = pkt ~src:"10.0.0.1" ~sport:1 ~dst:"3.3.3.3" ~dport:80 ~payload:"hello" () in
  let attack = pkt ~src:"10.0.0.2" ~sport:2 ~dst:"3.3.3.3" ~dport:80 ~payload:"x /bin/sh y" () in
  let from_attacker_later = pkt ~src:"10.0.0.2" ~sport:3 ~dst:"3.3.3.3" ~dport:443 () in
  let r = Interp.run p ~inputs:[ benign; attack; from_attacker_later; benign ] in
  (* benign passes twice; attack dropped; post-attack traffic from the
     blocklisted source dropped even off the guarded port. *)
  Alcotest.(check int) "two passed" 2 (List.length r.Interp.outputs);
  Alcotest.(check (list int)) "per-input" [ 1; 0; 0; 1 ] (List.map List.length r.Interp.per_input)

let test_ips_off_port_not_inspected () =
  let p = Nfl.Transform.canonicalize ((Option.get (Nfs.Corpus.find "ips")).Nfs.Corpus.program ()) in
  (* Attack payload to a non-guarded port flows through. *)
  let attack_443 = pkt ~src:"10.0.0.9" ~sport:2 ~dst:"3.3.3.3" ~dport:443 ~payload:"/bin/sh" () in
  let r = Interp.run p ~inputs:[ attack_443 ] in
  Alcotest.(check int) "not inspected" 1 (List.length r.Interp.outputs)

let test_ips_model () =
  let ex = extract_nf "ips" in
  let m = ex.Extract.model in
  (* The blocklist is output-impacting state... *)
  Alcotest.(check (list string)) "blocked is ois" [ "blocked" ] m.Model.ois_vars;
  (* ...and unlike the IDS, signature predicates survive into the
     model's matches. *)
  let mentions_sig =
    List.exists
      (fun (e : Model.entry) ->
        List.exists
          (fun (l : Solver.literal) ->
            Sexpr.Sset.mem "pkt.payload" (Sexpr.syms l.Solver.atom))
          e.Model.flow_match)
      m.Model.entries
  in
  Alcotest.(check bool) "payload predicates in model" true mentions_sig;
  (* Some drop entry installs blocklist state. *)
  let blocking =
    List.filter
      (fun (e : Model.entry) ->
        e.Model.pkt_action = Model.Drop && e.Model.state_update <> [])
      m.Model.entries
  in
  Alcotest.(check bool) "drop+blocklist entries exist" true (blocking <> [])

let test_ips_differential () =
  let ex = extract_nf "ips" in
  let v = Equiv.random_testing ~seed:77 ~trials:1000 ex in
  Alcotest.(check int) "no mismatches" 0 (List.length v.Equiv.mismatches)

(* --------------------------------------------------------------- *)
(* Synguard                                                         *)
(* --------------------------------------------------------------- *)

let test_synguard_budget () =
  let p =
    Nfl.Transform.canonicalize ((Option.get (Nfs.Corpus.find "synguard")).Nfs.Corpus.program ())
  in
  let syn i = pkt ~flags:Packet.Headers.syn ~src:"10.0.0.1" ~sport:(1000 + i) ~dst:"3.3.3.3" ~dport:80 () in
  let r = Interp.run p ~inputs:(List.init 6 syn) in
  (* Budget 3: first three admitted, rest rejected. *)
  Alcotest.(check (list int)) "admission pattern" [ 1; 1; 1; 0; 0; 0 ]
    (List.map List.length r.Interp.per_input)

let test_synguard_completion_releases () =
  let p =
    Nfl.Transform.canonicalize ((Option.get (Nfs.Corpus.find "synguard")).Nfs.Corpus.program ())
  in
  let syn i = pkt ~flags:Packet.Headers.syn ~src:"10.0.0.1" ~sport:(1000 + i) ~dst:"3.3.3.3" ~dport:80 () in
  let ack = pkt ~flags:Packet.Headers.ack ~src:"10.0.0.1" ~sport:1000 ~dst:"3.3.3.3" ~dport:80 () in
  (* 3 SYNs fill the budget; an ACK releases one slot; a 4th SYN is
     admitted again. *)
  let r = Interp.run p ~inputs:[ syn 0; syn 1; syn 2; ack; syn 3 ] in
  Alcotest.(check (list int)) "release pattern" [ 1; 1; 1; 1; 1 ]
    (List.map List.length r.Interp.per_input)

let test_synguard_model () =
  let ex = extract_nf "synguard" in
  let m = ex.Extract.model in
  Alcotest.(check (list string)) "half_open is ois" [ "half_open" ] m.Model.ois_vars;
  (* A state update performs a decrement somewhere (slot release). *)
  let has_decrement =
    List.exists
      (fun (e : Model.entry) ->
        List.exists
          (fun (_, u) ->
            match u with
            | Model.Dict_ops ops ->
                List.exists
                  (fun (_, v) ->
                    match Option.map Sexpr.view v with
                    | Some (Sexpr.Bin (Nfl.Ast.Sub, _, _)) -> true
                    | _ -> false)
                  ops
            | Model.Set_scalar _ -> false)
          e.Model.state_update)
      m.Model.entries
  in
  Alcotest.(check bool) "decrement transition in model" true has_decrement

let test_synguard_differential () =
  let ex = extract_nf "synguard" in
  let v = Equiv.random_testing ~seed:99 ~trials:1000 ex in
  Alcotest.(check int) "random: no mismatches" 0 (List.length v.Equiv.mismatches);
  let v2 = Equiv.flow_testing ~seed:3 ~flows:30 ~data_pkts:2 ex in
  Alcotest.(check int) "flows: no mismatches" 0 (List.length v2.Equiv.mismatches)

(* --------------------------------------------------------------- *)
(* Dynamic slicing against a real trace (the paper's Figure-1
   highlighted slice is a dynamic slice of "relay the first packet
   of a flow")                                                      *)
(* --------------------------------------------------------------- *)

let test_dynamic_slice_of_lb_first_packet () =
  let p = Nfl.Transform.canonicalize (Nfs.Lb.program ()) in
  let client = pkt ~src:"10.0.0.9" ~sport:4000 ~dst:"3.3.3.3" ~dport:80 () in
  let r = Interp.run p ~inputs:[ client ] in
  let send_sid =
    Option.get
      (List.find_map
         (fun s -> if Nfl.Builtins.is_pkt_output_stmt s then Some s.Nfl.Ast.sid else None)
         (Nfl.Ast.all_stmts p))
  in
  let ctx = Slicing.Dynamic.ctx_of_block p.Nfl.Ast.main in
  let dyn = Slicing.Dynamic.slice ctx r.Interp.trace ~criterion:send_sid in
  (* The dynamic slice must include the RR selection (executed branch)
     but not the hash selection (unexecuted branch). *)
  let sid_of pred =
    List.filter_map
      (fun (s : Nfl.Ast.stmt) -> if pred s then Some s.Nfl.Ast.sid else None)
      (Nfl.Ast.all_stmts p)
  in
  let rr_update =
    sid_of (fun s ->
        match s.Nfl.Ast.kind with
        | Nfl.Ast.Assign (Nfl.Ast.L_var "rr_idx", _) -> true
        | _ -> false)
  in
  let hash_select =
    sid_of (fun s ->
        match s.Nfl.Ast.kind with
        | Nfl.Ast.Assign (_, e) -> List.mem "hash" (Nfl.Ast.expr_calls e)
        | _ -> false)
  in
  (* The first packet's forwarding depends on server selection: the
     executed RR update's sid appears in the trace and the slice keeps
     the selection chain. *)
  Alcotest.(check bool) "rr path executed" true
    (List.exists (fun sid -> List.mem sid r.Interp.trace) rr_update);
  Alcotest.(check bool) "hash path not in dynamic slice" true
    (List.for_all (fun sid -> not (Slicing.Dynamic.Iset.mem sid dyn)) hash_select);
  (* Log counters never make it into the dynamic slice either. *)
  let log_updates =
    sid_of (fun s ->
        match s.Nfl.Ast.kind with
        | Nfl.Ast.Assign (Nfl.Ast.L_var v, _) -> v = "pass_stat" || v = "drop_stat"
        | _ -> false)
  in
  Alcotest.(check bool) "log updates pruned" true
    (List.for_all (fun sid -> not (Slicing.Dynamic.Iset.mem sid dyn)) log_updates);
  (* And the dynamic slice is a subset of the static union slice. *)
  let ex = extract_nf "lb" in
  Alcotest.(check bool) "dynamic ⊆ static union" true
    (Slicing.Dynamic.Iset.for_all
       (fun sid -> List.mem sid ex.Extract.union_slice)
       dyn)

(* --------------------------------------------------------------- *)
(* Semantic slice correctness: the residual program (slice union)
   emits the same packets as the original.                           *)
(* --------------------------------------------------------------- *)

let test_residual_program_equivalent () =
  List.iter
    (fun name ->
      let ex = extract_nf name in
      let p = ex.Extract.program in
      let residual = { p with Nfl.Ast.main = Slicing.Slice.restrict_block ex.Extract.union_slice p.Nfl.Ast.main } in
      let pkts = Packet.Traffic.random_stream ~seed:1234 ~n:300 () in
      let orig = Interp.run ~max_steps:10_000_000 p ~inputs:pkts in
      let slim = Interp.run ~max_steps:10_000_000 residual ~inputs:pkts in
      Alcotest.(check int)
        (name ^ ": same output count")
        (List.length orig.Interp.outputs)
        (List.length slim.Interp.outputs);
      Alcotest.(check bool) (name ^ ": same outputs") true
        (List.for_all2 Packet.Pkt.equal orig.Interp.outputs slim.Interp.outputs))
    [ "lb"; "nat"; "firewall"; "snort"; "ratelimiter"; "ips"; "synguard" ]

let suite =
  [
    Alcotest.test_case "ips semantics" `Quick test_ips_semantics;
    Alcotest.test_case "ips off-port not inspected" `Quick test_ips_off_port_not_inspected;
    Alcotest.test_case "ips model" `Quick test_ips_model;
    Alcotest.test_case "ips differential 1000" `Quick test_ips_differential;
    Alcotest.test_case "synguard budget" `Quick test_synguard_budget;
    Alcotest.test_case "synguard completion releases" `Quick test_synguard_completion_releases;
    Alcotest.test_case "synguard model has decrement" `Quick test_synguard_model;
    Alcotest.test_case "synguard differential" `Quick test_synguard_differential;
    Alcotest.test_case "dynamic slice of LB first packet" `Quick test_dynamic_slice_of_lb_first_packet;
    Alcotest.test_case "residual slice program equivalent" `Quick test_residual_program_equivalent;
  ]
