open Symexec
module Smap = Explore.Smap

let parse_main src = (Nfl.Parser.program src).Nfl.Ast.main

let env_with bindings =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty bindings

let sym_pkt_env extra = env_with (("pkt", Explore.sym_pkt "pkt") :: extra)

let test_straight_line_one_path () =
  let b = parse_main "main { x = pkt.dport; send(pkt); }" in
  let paths, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "one path" 1 (List.length paths);
  Alcotest.(check int) "stats agree" 1 stats.Explore.paths;
  let p = List.hd paths in
  Alcotest.(check int) "one send" 1 (List.length p.Explore.sends);
  Alcotest.(check int) "empty pc" 0 (List.length p.Explore.pc)

let test_branch_forks () =
  let b = parse_main "main { if (pkt.dport == 80) { send(pkt); } }" in
  let paths, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  Alcotest.(check int) "one fork" 1 stats.Explore.forks;
  let with_send = List.filter (fun p -> p.Explore.sends <> []) paths in
  Alcotest.(check int) "one sending path" 1 (List.length with_send);
  (* The sending path is conditioned on dport == 80. *)
  let p = List.hd with_send in
  Alcotest.(check int) "pc length" 1 (List.length p.Explore.pc);
  Alcotest.(check bool) "positive literal" true (List.hd p.Explore.pc).Solver.positive

let test_infeasible_branch_pruned () =
  (* Second test is implied by the first: no fork. *)
  let b =
    parse_main
      "main { if (pkt.dport == 80) { if (pkt.dport != 80) { send(pkt); } else { drop(); } } }"
  in
  let paths, _ = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "inner contradiction pruned" 2 (List.length paths);
  List.iter
    (fun p -> Alcotest.(check int) "nothing sent" 0 (List.length p.Explore.sends))
    paths

let test_concrete_condition_no_fork () =
  let b = parse_main "main { mode = 1; if (mode == 1) { send(pkt); } else { drop(); } }" in
  let paths, stats = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "single path" 1 (List.length paths);
  Alcotest.(check int) "no forks" 0 stats.Explore.forks;
  Alcotest.(check int) "send taken" 1 (List.length (List.hd paths).Explore.sends)

let test_dict_membership_forks () =
  let b =
    parse_main
      {|main { k = (pkt.ip_src, pkt.sport);
              if (k in tbl) { out = tbl[k]; } else { tbl[k] = 1; }
              send(pkt); }|}
  in
  let env = sym_pkt_env [ ("tbl", Explore.Dictv (Sexpr.dict_base "tbl")) ] in
  let paths, _ = Explore.block ~env b in
  Alcotest.(check int) "hit and miss paths" 2 (List.length paths);
  (* The miss path records a state write. *)
  let has_write (p : Explore.path) =
    match Smap.find "tbl" p.Explore.env with
    | Explore.Dictv d -> d.Sexpr.writes <> []
    | _ -> false
  in
  Alcotest.(check int) "one path writes state" 1
    (List.length (List.filter has_write paths))

let test_loop_bound_truncation () =
  (* Loop condition on a symbolic variable can iterate forever. *)
  let b = parse_main "main { i = 0; while (i < pkt.ip_len) { i = i + 1; } send(pkt); }" in
  let paths, stats =
    Explore.block ~config:{ Explore.default_config with Explore.loop_bound = 3 } ~env:(sym_pkt_env []) b
  in
  Alcotest.(check bool) "some truncated" true (stats.Explore.truncated_paths >= 1);
  (* Exits after 0, 1, 2, 3 iterations remain as real paths. *)
  Alcotest.(check bool) "bounded path count" true (List.length paths <= 5)

let test_for_in_unrolls () =
  let b =
    parse_main
      "main { acc = 0; for s in [1, 2, 3] { acc = acc + s; } send(pkt); }"
  in
  let paths, _ = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "one path" 1 (List.length paths);
  match Smap.find "acc" (List.hd paths).Explore.env with
  | Explore.Scalar e -> Alcotest.(check bool) "acc folded to 6" true (Sexpr.equal e (Sexpr.int 6))
  | _ -> Alcotest.fail "scalar expected"

let test_early_return_is_drop_path () =
  let b = parse_main "main { if (pkt.dport != 80) { return; } send(pkt); }" in
  let paths, _ = Explore.block ~env:(sym_pkt_env []) b in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  let dropping = List.filter (fun p -> p.Explore.sends = []) paths in
  Alcotest.(check int) "one drop path" 1 (List.length dropping)

let test_packet_rewrite_recorded () =
  let b = parse_main "main { pkt.ip_dst = 1.1.1.1; pkt.dport = 8080; send(pkt); }" in
  let paths, _ = Explore.block ~env:(sym_pkt_env []) b in
  let snap = List.hd (List.hd paths).Explore.sends in
  Alcotest.(check bool) "dst rewritten" true
    (Sexpr.equal (List.assoc "ip_dst" snap) (Sexpr.int (Packet.Addr.of_string "1.1.1.1")));
  Alcotest.(check bool) "dport rewritten" true
    (Sexpr.equal (List.assoc "dport" snap) (Sexpr.int 8080));
  (* Untouched fields remain symbolic. *)
  Alcotest.(check bool) "src still symbolic" true
    (Sexpr.equal (List.assoc "ip_src" snap) (Sexpr.sym "pkt.ip_src"))

let test_max_paths_overflow () =
  (* 2^8 paths from 8 independent branches; cap at 10. *)
  (* Independent bit tests: 2^8 feasible combinations. *)
  let conds =
    String.concat " "
      (List.init 8 (fun i -> Printf.sprintf "if ((pkt.ip_len & %d) != 0) { x = %d; }" (1 lsl i) i))
  in
  let b = parse_main ("main { x = 0; " ^ conds ^ " send(pkt); }") in
  let _, stats =
    Explore.block ~config:{ Explore.default_config with Explore.max_paths = 10 } ~env:(sym_pkt_env []) b
  in
  Alcotest.(check bool) "overflowed" true stats.Explore.overflowed;
  Alcotest.(check bool) "capped" true (stats.Explore.paths <= 10)

(* --------------------------------------------------------------- *)
(* Whole-NF exploration                                             *)
(* --------------------------------------------------------------- *)

(* Symbolic environment for a canonical NF: globals concrete except the
   named symbolic scalars/dicts. *)
let nf_env p ~sym_scalars ~sym_dicts ~pkt_var =
  let init = Interp.initial_state p in
  let env =
    Interp.Smap.fold
      (fun name v acc ->
        if List.mem name sym_scalars then Smap.add name (Explore.Scalar (Sexpr.sym name)) acc
        else if List.mem name sym_dicts then Smap.add name (Explore.Dictv (Sexpr.dict_base name)) acc
        else Smap.add name (Explore.sval_of_value v) acc)
      init Smap.empty
  in
  Smap.add pkt_var (Explore.sym_pkt "pkt") env

let loop_body_of p =
  let _, body, pkt_var = Nfl.Transform.packet_loop p in
  (List.filter (fun s -> not (Nfl.Builtins.is_pkt_input_stmt s)) body, pkt_var)

let test_lb_paths () =
  let p = Nfl.Transform.canonicalize (Nfs.Lb.program ()) in
  let body, pkt_var = loop_body_of p in
  let env =
    nf_env p
      ~sym_scalars:[ "mode"; "rr_idx"; "cur_port" ]
      ~sym_dicts:[ "f2b_nat"; "b2f_nat" ] ~pkt_var
  in
  let paths, stats = Explore.block ~env body in
  (* Inbound-new(RR), inbound-new(hash), inbound-existing,
     outbound-known, outbound-unknown = 5 paths. *)
  Alcotest.(check int) "five LB paths" 5 (List.length paths);
  Alcotest.(check bool) "no truncation" true (stats.Explore.truncated_paths = 0);
  let sending = List.filter (fun p -> p.Explore.sends <> []) paths in
  Alcotest.(check int) "four forwarding paths" 4 (List.length sending);
  (* Each forwarding path rewrites all four address/port fields. *)
  List.iter
    (fun p ->
      let snap = List.hd p.Explore.sends in
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " rewritten") true
            (not (Sexpr.equal (List.assoc f snap) (Sexpr.sym ("pkt." ^ f)))))
        [ "ip_src"; "sport"; "ip_dst"; "dport" ])
    sending

let test_firewall_paths () =
  let p = Nfl.Transform.canonicalize (Nfs.Firewall.program ()) in
  let body, pkt_var = loop_body_of p in
  let env = nf_env p ~sym_scalars:[] ~sym_dicts:[ "conn_table" ] ~pkt_var in
  let paths, _ = Explore.block ~env body in
  (* outbound; inbound-pinhole; inbound-open-port(strict, tcp);
     inbound-open-port(strict, non-tcp); inbound-closed.
     The open-port membership over [80, 443] adds a disjunctive split
     resolved as one atom, so expect >= 5 paths. *)
  Alcotest.(check bool) "at least 5 paths" true (List.length paths >= 5);
  let sending = List.filter (fun q -> q.Explore.sends <> []) paths in
  Alcotest.(check bool) "at least 3 forwarding" true (List.length sending >= 3)

let suite =
  [
    Alcotest.test_case "straight line" `Quick test_straight_line_one_path;
    Alcotest.test_case "branch forks" `Quick test_branch_forks;
    Alcotest.test_case "infeasible branch pruned" `Quick test_infeasible_branch_pruned;
    Alcotest.test_case "concrete condition no fork" `Quick test_concrete_condition_no_fork;
    Alcotest.test_case "dict membership forks" `Quick test_dict_membership_forks;
    Alcotest.test_case "loop bound truncation" `Quick test_loop_bound_truncation;
    Alcotest.test_case "for-in unrolls" `Quick test_for_in_unrolls;
    Alcotest.test_case "early return drop path" `Quick test_early_return_is_drop_path;
    Alcotest.test_case "packet rewrite recorded" `Quick test_packet_rewrite_recorded;
    Alcotest.test_case "max paths overflow" `Quick test_max_paths_overflow;
    Alcotest.test_case "LB: five paths" `Quick test_lb_paths;
    Alcotest.test_case "firewall: path census" `Quick test_firewall_paths;
  ]
