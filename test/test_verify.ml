open Nfactor
open Verify
open Symexec

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

let pkt ?(flags = Packet.Headers.ack) ?(payload = "") ~src ~sport ~dst ~dport () =
  Packet.Pkt.make ~ip_src:(Packet.Addr.of_string src) ~ip_dst:(Packet.Addr.of_string dst) ~sport
    ~dport ~tcp_flags:flags ~payload ()

(* --------------------------------------------------------------- *)
(* Network / reachability                                           *)
(* --------------------------------------------------------------- *)

let test_single_node_chain () =
  let ex = extract_nf "firewall" in
  let c = Network.chain [ Network.node_of_extraction "fw" ex ] in
  (* Unsolicited inbound to a closed port: dropped. *)
  let bad = pkt ~src:"8.8.8.8" ~sport:1 ~dst:"192.168.1.10" ~dport:2222 () in
  let outs, trace = Network.push c bad in
  Alcotest.(check int) "blocked" 0 (List.length outs);
  Alcotest.(check int) "one hop" 1 (List.length trace);
  (* Outbound opens the pinhole; now the reverse passes. *)
  let out_p = pkt ~src:"192.168.1.10" ~sport:2222 ~dst:"8.8.8.8" ~dport:1 () in
  let _ = Network.push c out_p in
  let outs2, _ = Network.push c (pkt ~src:"8.8.8.8" ~sport:1 ~dst:"192.168.1.10" ~dport:2222 ()) in
  Alcotest.(check int) "pinhole now open" 1 (List.length outs2)

let test_nat_firewall_chain () =
  (* inside -> FW -> NAT -> outside, with stateful return path. *)
  let fw = Network.node_of_extraction "fw" (extract_nf "firewall") in
  let nat = Network.node_of_extraction "nat" (extract_nf "nat") in
  (* NAT's inside net is 10/8, firewall's 192.168/16 — use an
     inside host in both nets? They differ; chain them anyway and use
     the NAT-inside host: firewall treats 10.x as outside, so for this
     chain put NAT first. *)
  let c = Network.chain [ nat ] in
  let egress = pkt ~src:"10.1.1.1" ~sport:7777 ~dst:"8.8.8.8" ~dport:53 () in
  let outs, _ = Network.push c egress in
  Alcotest.(check int) "translated out" 1 (List.length outs);
  let o = List.hd outs in
  Alcotest.(check string) "src is NAT" "5.5.5.5" (Packet.Addr.to_string o.Packet.Pkt.ip_src);
  ignore fw

let test_reaches () =
  let ex = extract_nf "lb" in
  let c = Network.chain [ Network.node_of_extraction "lb" ex ] in
  let client = pkt ~src:"10.0.0.7" ~sport:1234 ~dst:"3.3.3.3" ~dport:80 () in
  let r = Network.reaches c client ~dst:(Packet.Addr.of_string "1.1.1.1") in
  Alcotest.(check int) "delivered to backend 1" 1 (List.length r.Network.delivered)

let test_survey_invariant () =
  (* Invariant: no unsolicited external packet may emerge with an
     internal destination through the firewall. *)
  let ex = extract_nf "firewall" in
  let c = Network.chain [ Network.node_of_extraction "fw" ex ] in
  let inside_net = Packet.Addr.of_string "192.168.0.0" in
  let probes =
    List.concat_map
      (fun dport ->
        [ pkt ~src:"8.8.8.8" ~sport:999 ~dst:"192.168.1.1" ~dport ();
          pkt ~src:"9.9.9.9" ~sport:998 ~dst:"192.168.44.2" ~dport () ])
      [ 22; 23; 2222; 8443 ]
  in
  let violations =
    Network.survey c ~pkts:probes ~violates:(fun ~input:_ ~output ->
        Packet.Addr.in_prefix output.Packet.Pkt.ip_dst ~network:inside_net ~prefix:16
        && output.Packet.Pkt.ip_proto <> 0)
  in
  Alcotest.(check int) "no leaks on closed ports" 0 (List.length violations);
  (* Port 80 is deliberately open: the survey must catch it as a
     "violation" of the strict invariant. *)
  let open_probe = [ pkt ~src:"8.8.8.8" ~sport:999 ~dst:"192.168.1.1" ~dport:80 () ] in
  let v2 =
    Network.survey c ~pkts:open_probe ~violates:(fun ~input:_ ~output ->
        Packet.Addr.in_prefix output.Packet.Pkt.ip_dst ~network:inside_net ~prefix:16)
  in
  Alcotest.(check int) "open port detected" 1 (List.length v2)

(* --------------------------------------------------------------- *)
(* Chain composition                                                 *)
(* --------------------------------------------------------------- *)

let test_lb_modifies_fw_matches () =
  let lb = (extract_nf "lb").Extract.model in
  let fw = (extract_nf "firewall").Extract.model in
  (* The LB rewrites all four tuple fields; the firewall matches on
     them (pinhole keys and service ports). *)
  let modified = Model.modified_fields lb in
  List.iter
    (fun f -> Alcotest.(check bool) (f ^ " modified by LB") true (List.mem f modified))
    [ "ip_src"; "ip_dst"; "sport"; "dport" ];
  let matched = Model.matched_fields fw in
  Alcotest.(check bool) "fw matches dport" true (List.mem "dport" matched);
  let conflicts = Chain.conflicts_of_order [ ("lb", lb); ("fw", fw) ] in
  Alcotest.(check bool) "LB before FW interferes" true (conflicts <> []);
  let reverse = Chain.conflicts_of_order [ ("fw", fw); ("lb", lb) ] in
  Alcotest.(check int) "FW before LB clean" 0 (List.length reverse);
  (* snort's forwarding model matches only decode fields, so the LB
     does not interfere with it in either order. *)
  let ids = (extract_nf "snort").Extract.model in
  Alcotest.(check int) "LB/IDS independent" 0
    (List.length (Chain.conflicts_of_order [ ("lb", lb); ("ids", ids) ]))

let test_compose_fw_ids_with_lb () =
  (* The paper's example: {FW, IDS} composed with {LB}. The best
     interleavings keep the LB last. *)
  let fw = ("fw", (extract_nf "firewall").Extract.model) in
  let ids = ("ids", (extract_nf "snort").Extract.model) in
  let lb = ("lb", (extract_nf "lb").Extract.model) in
  let rankings = Chain.compose_chains [ fw; ids ] [ lb ] in
  Alcotest.(check int) "three interleavings" 3 (List.length rankings);
  let best = List.hd rankings in
  Alcotest.(check (list string)) "fw, ids, lb wins" [ "fw"; "ids"; "lb" ] best.Chain.order;
  Alcotest.(check int) "winning order conflict-free" 0 (List.length best.Chain.conflicts)

let test_safe_orders () =
  let fw = ("fw", (extract_nf "firewall").Extract.model) in
  let lb = ("lb", (extract_nf "lb").Extract.model) in
  let safe = Chain.safe_orders [ fw; lb ] in
  (* The LB rewrites what the firewall matches, so the only safe order
     keeps the firewall first. *)
  Alcotest.(check int) "exactly one safe order" 1 (List.length safe);
  Alcotest.(check (list string)) "fw before lb" [ "fw"; "lb" ] (List.hd safe).Chain.order

(* --------------------------------------------------------------- *)
(* Test generation                                                   *)
(* --------------------------------------------------------------- *)

(* Entry indices whose config predicates are false under the
   extraction-time configuration: they belong to the other Figure-6
   tables and can never fire. *)
let config_unreachable ex =
  let store = Model_interp.initial_store ex in
  let reachable (e : Model.entry) =
    List.for_all
      (fun l ->
        match Sexpr.view (Testgen.resolve_config store l).Solver.atom with
        | Sexpr.Const (Value.Bool b) -> b = l.Solver.positive
        | _ -> true)
      e.Model.config
  in
  List.concat
    (List.mapi
       (fun i e -> if reachable e then [] else [ i ])
       ex.Extract.model.Model.entries)

let test_cover_firewall () =
  let ex = extract_nf "firewall" in
  let c = Testgen.cover ex in
  (* Every entry reachable under the active configuration is drivable;
     the only uncovered entries belong to the other-config tables. *)
  Alcotest.(check (list int)) "uncovered = config-unreachable" (config_unreachable ex)
    c.Testgen.uncovered;
  (* Stateful sequencing: the pinhole entry fires after the outbound
     packet, so the sequence is non-trivially ordered. *)
  Alcotest.(check bool) "multiple packets" true (List.length c.Testgen.pkts >= 3)

let test_cover_lb () =
  let ex = extract_nf "lb" in
  let c = Testgen.cover ex in
  (* mode=hash entries are unreachable under the concrete mode=1
     config; everything else must be covered. *)
  let m = ex.Extract.model in
  let reachable_under_rr =
    List.filteri
      (fun _i (e : Model.entry) ->
        (* entries whose config is satisfiable with mode=1 *)
        let store = Model_interp.initial_store ex in
        List.for_all
          (fun l ->
            match Sexpr.view (Testgen.resolve_config store l).Solver.atom with
            | Sexpr.Const (Value.Bool b) -> b = l.Solver.positive
            | _ -> true)
          e.Model.config)
      m.Model.entries
  in
  Alcotest.(check bool) "covers at least the RR-reachable entries" true
    (List.length c.Testgen.covered >= List.length reachable_under_rr - 1);
  (* The "existing connection" entry requires a prior packet: check
     some generated packet repeats a flow. *)
  Alcotest.(check bool) "sequence has >= 3 packets" true (List.length c.Testgen.pkts >= 3)

let test_compliance_replay () =
  List.iter
    (fun name ->
      let ex = extract_nf name in
      let c = Testgen.cover ex in
      let v = Testgen.compliance ex c in
      Alcotest.(check bool) (name ^ ": replay matches program") true (Equiv.ok v))
    [ "firewall"; "nat"; "lb"; "ratelimiter" ]

let test_reset_chain_mismatch () =
  let fw = Network.node_of_extraction "fw" (extract_nf "firewall") in
  let nat = Network.node_of_extraction "nat" (extract_nf "nat") in
  let c = Network.chain [ fw; nat ] in
  match Network.reset_chain c ~stores:[ fw.Network.store ] with
  | exception Invalid_argument msg ->
      let contains needle =
        let nl = String.length needle and hl = String.length msg in
        let rec at i = i + nl <= hl && (String.sub msg i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "names the chain" true (contains "fw" && contains "nat");
      Alcotest.(check bool) "names both counts" true
        (contains "2 node(s)" && contains "1 store(s)")
  | () -> Alcotest.fail "length mismatch must raise"

let test_push_actives_cache () =
  (* The per-node actives cache must not change behavior, even when
     packets flip config bindings mid-stream (ips blocklists a source,
     which later entries read as config). Reference: the same chain
     with the cache forcibly cleared before every packet. *)
  let names = [ "ips"; "ratelimiter" ] in
  let mk () =
    Network.chain
      (List.map (fun n -> Network.node_of_extraction n (extract_nf n)) names)
  in
  let pkts = Packet.Traffic.random_stream ~seed:13 ~n:1500 () in
  let cached = mk () and uncached = mk () in
  List.iter
    (fun p ->
      let o1, _ = Network.push cached p in
      List.iter (fun (n : Network.node) -> n.Network.actives <- None) uncached.Network.nodes;
      let o2, _ = Network.push uncached p in
      Alcotest.(check bool) "outputs agree" true
        (List.length o1 = List.length o2 && List.for_all2 Packet.Pkt.equal o1 o2))
    pkts;
  List.iter2
    (fun (a : Network.node) (b : Network.node) ->
      Alcotest.(check bool) (a.Network.id ^ " store agrees") true
        (Model_interp.Smap.equal Value.equal a.Network.store b.Network.store))
    cached.Network.nodes uncached.Network.nodes

let suite =
  [
    Alcotest.test_case "single-node chain" `Quick test_single_node_chain;
    Alcotest.test_case "NAT egress chain" `Quick test_nat_firewall_chain;
    Alcotest.test_case "reaches backend" `Quick test_reaches;
    Alcotest.test_case "survey invariant" `Quick test_survey_invariant;
    Alcotest.test_case "LB/FW interference" `Quick test_lb_modifies_fw_matches;
    Alcotest.test_case "compose {FW,IDS} x {LB}" `Quick test_compose_fw_ids_with_lb;
    Alcotest.test_case "safe orders" `Quick test_safe_orders;
    Alcotest.test_case "testgen covers firewall" `Quick test_cover_firewall;
    Alcotest.test_case "testgen covers LB" `Quick test_cover_lb;
    Alcotest.test_case "compliance replay" `Quick test_compliance_replay;
    Alcotest.test_case "reset_chain length mismatch diagnostics" `Quick test_reset_chain_mismatch;
    Alcotest.test_case "push actives cache is transparent" `Quick test_push_actives_cache;
  ]
